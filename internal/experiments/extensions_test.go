package experiments

import (
	"testing"

	"atgpu/internal/transfer"
)

func TestRunScanSweep(t *testing.T) {
	cfg := testConfig()
	cfg.SizesReduce = []int{1 << 10, 1 << 12} // ScanSizes reuses this override
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunScan()
	if err != nil {
		t.Fatal(err)
	}
	if data.Workload != "scan" || len(data.Points) != 2 {
		t.Fatalf("scan sweep = %+v", data)
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	// Scan is multi-round like reduction: transfer is significant but the
	// prediction must stay close to observation.
	if s.MeanDeltaGap > 0.12 {
		t.Errorf("scan |ΔT-ΔE| = %.3f", s.MeanDeltaGap)
	}
	for _, p := range data.Points {
		if p.SWGPUCost >= p.ATGPUCost {
			t.Errorf("n=%d: SWGPU %g ≥ ATGPU %g", p.N, p.SWGPUCost, p.ATGPUCost)
		}
	}
}

func TestScanSizesDefaults(t *testing.T) {
	r, err := NewRunner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sizes := r.ScanSizes()
	if len(sizes) == 0 || sizes[0] != 1<<14 {
		t.Fatalf("scan sizes = %v", sizes)
	}
}

func TestRunTransposeContrast(t *testing.T) {
	r := newTestRunner(t)
	res, err := r.RunTransposeContrast(128)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveQ <= res.TiledQ {
		t.Fatalf("model: naive q=%g should exceed tiled q=%g", res.NaiveQ, res.TiledQ)
	}
	if !res.ModelOrdersCorrectly {
		t.Fatalf("model ordering mismatch: naive %d cycles vs tiled %d, q %g vs %g",
			res.NaiveCycles, res.TiledCycles, res.NaiveQ, res.TiledQ)
	}
}

func TestRunOutOfCore(t *testing.T) {
	r := newTestRunner(t)
	points, err := r.RunOutOfCore(1<<14, []int{1 << 10, 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Speedup < 1 {
			t.Errorf("chunk %d: overlap speedup %g < 1", p.ChunkWords, p.Speedup)
		}
		if p.Overlapped > p.Serial {
			t.Errorf("chunk %d: overlap slower than serial", p.ChunkWords)
		}
	}
	// Fewer, larger chunks amortise α: serial time must fall with chunk
	// size.
	if points[1].Serial >= points[0].Serial {
		t.Errorf("larger chunks should be faster: %g vs %g", points[1].Serial, points[0].Serial)
	}
}

// TestRunDeviceSweep is the cross-GPU verification: on every preset the
// calibrated model must predict the transfer share within a few points and
// explain most of the total time.
func TestRunDeviceSweep(t *testing.T) {
	points, err := RunDeviceSweep(1<<16, transfer.Pageable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("device sweep covered %d presets", len(points))
	}
	for _, p := range points {
		if gap := abs(p.DeltaPredicted - p.DeltaObserved); gap > 0.12 {
			t.Errorf("%s: |ΔT-ΔE| = %.3f", p.Device, gap)
		}
		if p.CostCoverage < 0.7 || p.CostCoverage > 1.3 {
			t.Errorf("%s: cost coverage = %.2f, want ≈1", p.Device, p.CostCoverage)
		}
	}
	// Faster devices shift the balance toward transfer: the 1080's ΔE
	// should be at least the 650's.
	if points[1].DeltaObserved < points[0].DeltaObserved {
		t.Errorf("gtx1080 ΔE %.3f < gtx650 ΔE %.3f — faster kernels should raise the transfer share",
			points[1].DeltaObserved, points[0].DeltaObserved)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunReduceStrategies(t *testing.T) {
	r := newTestRunner(t)
	points, err := r.RunReduceStrategies(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Structure: grid-stride uses the fewest rounds; interleaved matches
	// sequential.
	byName := map[string]StrategyPoint{}
	for _, p := range points {
		byName[p.Strategy] = p
	}
	if byName["grid-stride"].Rounds >= byName["sequential"].Rounds {
		t.Errorf("grid-stride rounds %d should be below sequential %d",
			byName["grid-stride"].Rounds, byName["sequential"].Rounds)
	}
	if byName["interleaved"].Rounds != byName["sequential"].Rounds {
		t.Errorf("interleaved rounds %d ≠ sequential %d",
			byName["interleaved"].Rounds, byName["sequential"].Rounds)
	}
	// The model must order the strategies mostly like the device does.
	if agree := StrategyOrderingAgreement(points); agree < 0.8 {
		t.Errorf("model orders only %.0f%% of strategy pairs correctly", 100*agree)
		for _, p := range points {
			t.Logf("%-12s predicted %.6fs observed %.6fs", p.Strategy, p.PredictedKernel, p.ObservedKernel)
		}
	}
}
