package experiments

import (
	"bytes"
	"strings"
	"testing"

	"atgpu/internal/obs"
)

// obsConfig is the faulted sweep with full observability collection: the
// hardest determinism case, since retries, backoff and fault events all
// land in the trace and metrics.
func obsConfig(workers int) Config {
	cfg := faultedConfig()
	cfg.Workers = workers
	cfg.Obs = obs.Options{Trace: true, Metrics: true}
	return cfg
}

// renderObs runs the faulted vecadd sweep and renders its folded report
// to bytes: the Perfetto trace JSON and the Prometheus metrics text.
func renderObs(t *testing.T, workers int) (trace, metrics []byte) {
	t.Helper()
	r, err := NewRunner(obsConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if data.Obs == nil {
		t.Fatalf("workers=%d: no report collected", workers)
	}
	var tb, mb bytes.Buffer
	if err := data.Obs.Trace.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := data.Obs.Metrics.WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestObsByteIdenticalAcrossWorkers is the observability determinism
// acceptance test: the folded trace and metrics of a faulted sweep are
// byte-identical whether the points ran sequentially or on 2 or 4
// goroutines, because every point records into its own sinks and the
// fold happens in point order.
func TestObsByteIdenticalAcrossWorkers(t *testing.T) {
	wantTrace, wantMetrics := renderObs(t, 1)
	for _, workers := range []int{2, 4} {
		gotTrace, gotMetrics := renderObs(t, workers)
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("workers=%d: trace differs from sequential run (%d vs %d bytes)",
				workers, len(gotTrace), len(wantTrace))
		}
		if !bytes.Equal(gotMetrics, wantMetrics) {
			t.Errorf("workers=%d: metrics differ from sequential run:\n%s\nvs\n%s",
				workers, gotMetrics, wantMetrics)
		}
	}
}

// TestObsFaultedSweepRecordsFaults checks the fault machinery lands in
// the unified report: a faulted sweep must surface retries in the
// metrics and per-point process groups in the trace.
func TestObsFaultedSweepRecordsFaults(t *testing.T) {
	_, metrics := renderObs(t, 1)
	text := string(metrics)
	for _, want := range []string{
		"atgpu_transfer_retries_total",
		"atgpu_transfer_in_words_total",
		"atgpu_host_rounds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s:\n%s", want, text)
		}
	}
}

// TestObsPipelineSweepTagsSchedules checks the pipelined sweep's folded
// trace keeps the two schedules apart: every point contributes both a
// "seq/" and a "pipe/" process group.
func TestObsPipelineSweepTagsSchedules(t *testing.T) {
	cfg := testConfig()
	cfg.Obs = obs.Options{Trace: true}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunReducePipelined()
	if err != nil {
		t.Fatal(err)
	}
	if data.Obs == nil || data.Obs.Trace == nil {
		t.Fatal("no trace collected")
	}
	seq, pipe := false, false
	for _, s := range data.Obs.Trace.Spans() {
		if strings.Contains(s.Proc, "/seq/") {
			seq = true
		}
		if strings.Contains(s.Proc, "/pipe/") {
			pipe = true
		}
	}
	if !seq || !pipe {
		t.Errorf("trace missing schedule tags: seq=%v pipe=%v", seq, pipe)
	}
}

// TestObsOffLeavesReportsNil checks the disabled default stays inert:
// no Obs field is populated anywhere in the sweep results.
func TestObsOffLeavesReportsNil(t *testing.T) {
	r := newTestRunner(t)
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	if data.Obs != nil {
		t.Error("sweep collected a report with observability off")
	}
	for _, p := range data.Points {
		if p.Obs != nil {
			t.Errorf("point n=%d collected a report with observability off", p.N)
		}
	}
}
