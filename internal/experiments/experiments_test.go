package experiments

import (
	"strings"
	"testing"

	"atgpu/internal/transfer"
)

// testConfig shrinks the sweeps so the full predicted-vs-observed pipeline
// runs in well under a second.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SizesVecAdd = []int{1 << 10, 1 << 11, 1 << 12}
	cfg.SizesReduce = []int{1 << 10, 1 << 12}
	cfg.SizesMatMul = []int{32, 64, 128}
	return cfg
}

func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerValidatesDevice(t *testing.T) {
	cfg := testConfig()
	cfg.Device.NumSMs = 0
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("invalid device accepted")
	}
}

func TestRunnerCostParams(t *testing.T) {
	r := newTestRunner(t)
	if err := r.CostParams().Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
	if r.Calibration().TransferFit.R2 < 0.99 {
		t.Fatal("transfer calibration fit poor")
	}
	if r.Config().Device.Name == "" {
		t.Fatal("config lost")
	}
}

func TestSizeDefaults(t *testing.T) {
	r, err := NewRunner(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.VecAddSizes(); len(got) != 10 || got[0] != 100_000 || got[9] != 1_000_000 {
		t.Fatalf("default vecadd sizes = %v", got)
	}
	if got := r.ReduceSizes(); got[0] != 1<<16 || got[len(got)-1] != 1<<22 {
		t.Fatalf("default reduce sizes = %v", got)
	}
	if got := r.MatMulSizes(); got[0] != 32 || got[len(got)-1] != 256 {
		t.Fatalf("default matmul sizes = %v", got)
	}

	full := DefaultConfig()
	full.Full = true
	rf, err := NewRunner(full)
	if err != nil {
		t.Fatal(err)
	}
	if got := rf.VecAddSizes(); got[9] != 10_000_000 {
		t.Fatalf("full vecadd max = %d, want 1e7 (paper)", got[9])
	}
	if got := rf.ReduceSizes(); got[len(got)-1] != 1<<26 {
		t.Fatalf("full reduce max = %d, want 2^26 (paper)", got[len(got)-1])
	}
	if got := rf.MatMulSizes(); got[len(got)-1] != 1024 {
		t.Fatalf("full matmul max = %d, want 1024 (paper)", got[len(got)-1])
	}
}

// TestVecAddSweepShape asserts the paper's §IV-A findings on the scaled
// sweep: transfer dominates (ΔE well above 50%), ATGPU's predicted share
// tracks the observed share closely, and the SWGPU cost grows far slower
// than the observed total.
func TestVecAddSweepShape(t *testing.T) {
	r := newTestRunner(t)
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 3 {
		t.Fatalf("points = %d", len(data.Points))
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanDeltaObserved < 0.5 {
		t.Errorf("vecadd ΔE = %.2f, want transfer-dominated (> 0.5)", s.MeanDeltaObserved)
	}
	if s.MeanDeltaGap > 0.10 {
		t.Errorf("|ΔT-ΔE| = %.3f, want within 10%%", s.MeanDeltaGap)
	}
	if s.ATGPUSlopeRatio < 0.7 || s.ATGPUSlopeRatio > 1.3 {
		t.Errorf("ATGPU slope ratio = %.2f, want ≈1", s.ATGPUSlopeRatio)
	}
	if s.SWGPUSlopeRatio > 0.6*s.ATGPUSlopeRatio {
		t.Errorf("SWGPU slope ratio %.2f not clearly below ATGPU %.2f",
			s.SWGPUSlopeRatio, s.ATGPUSlopeRatio)
	}
	for _, p := range data.Points {
		if p.SWGPUCost >= p.ATGPUCost {
			t.Errorf("n=%d: SWGPU %g ≥ ATGPU %g", p.N, p.SWGPUCost, p.ATGPUCost)
		}
		if p.KernelTime >= p.TotalTime {
			t.Errorf("n=%d: kernel %g ≥ total %g", p.N, p.KernelTime, p.TotalTime)
		}
	}
}

// TestReduceSweepShape asserts §IV-B: multi-round, transfer a significant
// share but below vecadd's, predictions within a few percent.
func TestReduceSweepShape(t *testing.T) {
	r := newTestRunner(t)
	vec, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	red, err := r.RunReduce()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := Summarise(vec)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Summarise(red)
	if err != nil {
		t.Fatal(err)
	}
	if sr.MeanDeltaObserved <= 0.05 || sr.MeanDeltaObserved >= sv.MeanDeltaObserved {
		t.Errorf("reduce ΔE = %.2f, want significant but below vecadd's %.2f",
			sr.MeanDeltaObserved, sv.MeanDeltaObserved)
	}
	if sr.MeanDeltaGap > 0.10 {
		t.Errorf("reduce |ΔT-ΔE| = %.3f", sr.MeanDeltaGap)
	}
}

// TestMatMulSweepShape asserts §IV-C: compute-dominated — "there is little
// difference between the kernel running time and the total running time".
func TestMatMulSweepShape(t *testing.T) {
	r := newTestRunner(t)
	data, err := r.RunMatMul()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanDeltaObserved > 0.45 {
		t.Errorf("matmul ΔE = %.2f, want compute-dominated", s.MeanDeltaObserved)
	}
	// The transfer share falls as n grows (paper Fig 6c's declining Δ):
	// compute is Θ(n³), transfer Θ(n²).
	for i := 1; i < len(data.Points); i++ {
		if data.Points[i].DeltaObserved >= data.Points[i-1].DeltaObserved {
			t.Errorf("ΔE not declining: n=%d %.3f → n=%d %.3f",
				data.Points[i-1].N, data.Points[i-1].DeltaObserved,
				data.Points[i].N, data.Points[i].DeltaObserved)
		}
	}
	// At the largest size the kernel share must dominate.
	last := data.Points[len(data.Points)-1]
	if last.KernelTime/last.TotalTime < 0.6 {
		t.Errorf("matmul largest-n kernel share = %.2f, want > 0.6",
			last.KernelTime/last.TotalTime)
	}
}

func TestFiguresStructure(t *testing.T) {
	r := newTestRunner(t)
	vec, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(vec)
	ids := make(map[string]Figure)
	for _, f := range figs {
		ids[f.ID] = f
	}
	for _, id := range []string{"fig3a", "fig3b", "fig3c", "fig6a"} {
		if _, ok := ids[id]; !ok {
			t.Fatalf("vecadd figures missing %s (got %v)", id, figIDs(figs))
		}
	}
	if got := len(ids["fig3c"].Series); got != 4 {
		t.Fatalf("fig3c has %d series, want 4 (ATGPU, SWGPU, Total, Kernel)", got)
	}
	for _, s := range ids["fig3c"].Series {
		min, max := s.MinMaxY()
		if min < 0 || max > 1 {
			t.Fatalf("fig3c series %s not normalised: [%g, %g]", s.Name, min, max)
		}
	}
	if got := len(ids["fig6a"].Series); got != 2 {
		t.Fatalf("fig6a has %d series, want 2 (ΔE, ΔT)", got)
	}
	// Unknown workload yields no figures.
	if Figures(&WorkloadData{Workload: "nope"}) != nil {
		t.Fatal("unknown workload should yield nil figures")
	}
}

func figIDs(figs []Figure) []string {
	ids := make([]string, len(figs))
	for i, f := range figs {
		ids[i] = f.ID
	}
	return ids
}

func TestSummaryString(t *testing.T) {
	r := newTestRunner(t)
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"vecadd", "ΔE", "ΔT", "SWGPU", "slope ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummariseEmpty(t *testing.T) {
	if _, err := Summarise(&WorkloadData{Workload: "x"}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestSchemeAffectsObservedOnly(t *testing.T) {
	fast := testConfig()
	fast.Scheme = transfer.Pinned
	slow := testConfig()
	slow.Scheme = transfer.Pageable

	rf, err := NewRunner(fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRunner(slow)
	if err != nil {
		t.Fatal(err)
	}
	df, err := rf.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rs.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	for i := range df.Points {
		if ds.Points[i].TransferTime <= df.Points[i].TransferTime {
			t.Errorf("pageable transfer %g not slower than pinned %g",
				ds.Points[i].TransferTime, df.Points[i].TransferTime)
		}
		if ds.Points[i].KernelTime != df.Points[i].KernelTime {
			t.Errorf("kernel time differs across schemes: %g vs %g",
				ds.Points[i].KernelTime, df.Points[i].KernelTime)
		}
	}
}
