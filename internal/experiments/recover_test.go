package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestSweepRecoversPointPanic is the satellite acceptance for the shared
// scheduler: a panicking point goroutine must not crash the sweep (or the
// daemon hosting it) — it is recorded as a Failed point with the stack in
// its fault log, and every other point completes normally.
func TestSweepRecoversPointPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := newTestRunner(t)
		r.cfg.Workers = workers
		sizes := []int{64, 128, 256, 512}
		data, err := r.runSweep("panicky", sizes, func(idx, n int) (WorkloadPoint, error) {
			if idx == 1 {
				panic(fmt.Sprintf("synthetic point crash n=%d", n))
			}
			return WorkloadPoint{N: n, TotalTime: float64(n)}, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: runSweep: %v", workers, err)
		}
		if len(data.Points) != len(sizes) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(data.Points), len(sizes))
		}
		crashed := data.Points[1]
		if !crashed.Failed || !strings.Contains(crashed.Err, "synthetic point crash n=128") {
			t.Fatalf("workers=%d: crashed point = %+v, want Failed with panic message", workers, crashed)
		}
		if crashed.N != 128 {
			t.Errorf("workers=%d: crashed point N = %d, want 128", workers, crashed.N)
		}
		if len(crashed.FaultLog) == 0 || !strings.Contains(crashed.FaultLog[0], "panic stack:") ||
			!strings.Contains(crashed.FaultLog[0], "runSweep") {
			t.Errorf("workers=%d: fault log missing panic stack: %q", workers, crashed.FaultLog)
		}
		for _, i := range []int{0, 2, 3} {
			if data.Points[i].Failed || data.Points[i].TotalTime != float64(sizes[i]) {
				t.Errorf("workers=%d: point %d = %+v, want untouched success", workers, i, data.Points[i])
			}
		}
		if got := data.FailedPoints(); got != 1 {
			t.Errorf("workers=%d: FailedPoints = %d, want 1", workers, got)
		}
	}
}

// TestPipelineSweepRecoversPointPanic repeats the panic-isolation check on
// the pipelined sweep path.
func TestPipelineSweepRecoversPointPanic(t *testing.T) {
	r := newTestRunner(t)
	r.cfg.Workers = 2
	data, err := r.runPipelineSweep("panicky-pipe", []int{64, 128}, func(idx, n int) (PipelinePoint, error) {
		if idx == 0 {
			panic("pipe crash")
		}
		return PipelinePoint{N: n, SequentialTime: 1}, nil
	})
	if err != nil {
		t.Fatalf("runPipelineSweep: %v", err)
	}
	if !data.Points[0].Failed || !strings.Contains(data.Points[0].Err, "pipe crash") {
		t.Fatalf("point 0 = %+v, want Failed with panic message", data.Points[0])
	}
	if data.Points[1].Failed || data.Points[1].SequentialTime != 1 {
		t.Fatalf("point 1 = %+v, want success", data.Points[1])
	}
}

// TestSweepRealErrorsStillPropagate pins the boundary: panics are
// absorbed, but ordinary errors (configuration and programming mistakes)
// abort the sweep with the lowest-index occurrence, exactly as before the
// scheduler extraction.
func TestSweepRealErrorsStillPropagate(t *testing.T) {
	r := newTestRunner(t)
	r.cfg.Workers = 4
	boom := errors.New("boom")
	_, err := r.runSweep("erroring", []int{1, 2, 3, 4}, func(idx, n int) (WorkloadPoint, error) {
		if idx >= 2 {
			return WorkloadPoint{}, fmt.Errorf("point %d: %w", idx, boom)
		}
		return WorkloadPoint{N: n}, nil
	})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "point 2") {
		t.Fatalf("err = %v, want lowest-index real error", err)
	}
}

// TestSweepCancellationFlushesPartialData drives the SIGINT path: a
// context cancelled mid-sweep yields ErrCancelled plus partial data in
// which every unrun point is marked Failed/cancelled — nothing is lost,
// nothing is left unaccounted for.
func TestSweepCancellationFlushesPartialData(t *testing.T) {
	r := newTestRunner(t)
	r.cfg.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	r.cfg.Context = ctx
	sizes := []int{64, 128, 256, 512}
	data, err := r.runSweep("cancelly", sizes, func(idx, n int) (WorkloadPoint, error) {
		if idx == 1 {
			cancel() // points after this one must never start
		}
		return WorkloadPoint{N: n, TotalTime: 1}, nil
	})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if data == nil || len(data.Points) != len(sizes) {
		t.Fatalf("partial data missing: %+v", data)
	}
	for i, p := range data.Points {
		switch {
		case i <= 1:
			if p.Failed || p.TotalTime != 1 {
				t.Errorf("point %d = %+v, want completed", i, p)
			}
		default:
			if !p.Failed || !strings.Contains(p.Err, "cancelled") || p.N != sizes[i] {
				t.Errorf("point %d = %+v, want cancelled marker with N", i, p)
			}
		}
	}
}

// TestNewRunnerCalibrated verifies a runner built from a cached
// calibration behaves identically to a freshly calibrated one — the
// property atgpud's calibration cache depends on.
func TestNewRunnerCalibrated(t *testing.T) {
	cfg := testConfig()
	cfg.SizesVecAdd = []int{1 << 10}
	fresh, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link, cal, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewRunnerCalibrated(cfg, link, cal)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CostParams() != cached.CostParams() {
		t.Fatalf("cost params diverge: %+v vs %+v", fresh.CostParams(), cached.CostParams())
	}
	a, err := fresh.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cached.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 1 || len(b.Points) != 1 || !reflect.DeepEqual(a.Points[0], b.Points[0]) {
		t.Fatalf("sweep points diverge:\n%+v\nvs\n%+v", a.Points, b.Points)
	}

	if _, err := NewRunnerCalibrated(cfg, nil, cal); err == nil {
		t.Fatal("nil link accepted")
	}
}

// TestPredictPoint checks the model-only entry point agrees with the
// model-side fields of a full sweep point.
func TestPredictPoint(t *testing.T) {
	r := newTestRunner(t)
	pred, err := r.PredictPoint("vecadd", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if pred.N != 1<<10 || pred.ATGPUCost <= 0 || pred.SWGPUCost <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	full := data.Points[0] // testConfig's first vecadd size is 1<<10
	if pred.ATGPUCost != full.ATGPUCost || pred.SWGPUCost != full.SWGPUCost ||
		pred.DeltaPredicted != full.DeltaPredicted {
		t.Fatalf("PredictPoint %+v disagrees with sweep point %+v", pred, full)
	}
	if _, err := r.PredictPoint("nope", 8); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := r.PredictPoint("vecadd", 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
