package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSweepWorkers measures the wall time of the default scaled
// vecadd sweep (10 sizes, n = 10⁵ … 10⁶) at increasing worker counts —
// the tentpole's speedup evidence. Points are embarrassingly parallel
// (each builds its own device/engine/host), so on a multi-core machine
// wall time should fall near-linearly until workers exceed cores; CI
// uploads the numbers as BENCH_sweep.json.
//
// Calibration runs once per worker count, outside the timed loop.
// BenchmarkPipelineOverlap measures the pipelined vecadd sweep — every
// point simulates both the sequential-chunked and the overlapped
// two-stream schedule — at increasing chunk counts. CI uploads the numbers
// as BENCH_pipeline.json.
func BenchmarkPipelineOverlap(b *testing.B) {
	for _, chunks := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = 1
			cfg.Chunks = chunks
			r, err := NewRunner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := r.RunVecAddPipelined()
				if err != nil {
					b.Fatal(err)
				}
				for _, pt := range data.Points {
					if pt.ObservedSaving <= 0 {
						b.Fatalf("n=%d chunks=%d: no overlap saving", pt.N, chunks)
					}
				}
			}
		})
	}
}

// BenchmarkAtomics measures the end-to-end atomic-workload sweeps —
// contended and privatized histogram, compaction, top-k, Monte Carlo —
// plus the histogram contention study, each point running the full
// predict/simulate/verify pipeline. The sizes are the short test ladder so
// a CI run with -benchtime 2x stays in seconds; CI uploads the numbers as
// BENCH_atomics.json and gates them against the committed trajectory.
func BenchmarkAtomics(b *testing.B) {
	cfg := atomicsTestConfig()
	cfg.Workers = 1
	r, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	checked := func(fn func() (*WorkloadData, error)) func() error {
		return func() error {
			data, err := fn()
			if err != nil {
				return err
			}
			if n := data.FailedPoints(); n != 0 {
				return fmt.Errorf("%s: %d failed points", data.Workload, n)
			}
			return nil
		}
	}
	subs := []struct {
		name string
		fn   func() error
	}{
		{"histogram", checked(func() (*WorkloadData, error) { return r.RunHistogram(false) })},
		{"histogram-priv", checked(func() (*WorkloadData, error) { return r.RunHistogram(true) })},
		{"compact", checked(r.RunCompact)},
		{"topk", checked(r.RunTopK)},
		{"montecarlo", checked(r.RunMonteCarlo)},
		{"contention-study", func() error {
			study, err := r.RunHistogramContention(1<<12, nil)
			if err != nil {
				return err
			}
			if len(study.Points) == 0 {
				return fmt.Errorf("contention study produced no points")
			}
			return nil
		}},
	}
	for _, sub := range subs {
		b.Run(sub.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sub.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSweepWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = workers
			r, err := NewRunner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunVecAdd(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
