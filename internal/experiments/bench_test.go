package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkSweepWorkers measures the wall time of the default scaled
// vecadd sweep (10 sizes, n = 10⁵ … 10⁶) at increasing worker counts —
// the tentpole's speedup evidence. Points are embarrassingly parallel
// (each builds its own device/engine/host), so on a multi-core machine
// wall time should fall near-linearly until workers exceed cores; CI
// uploads the numbers as BENCH_sweep.json.
//
// Calibration runs once per worker count, outside the timed loop.
func BenchmarkSweepWorkers(b *testing.B) {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = workers
			r, err := NewRunner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunVecAdd(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
