package experiments

import (
	"reflect"
	"testing"
)

// runAllPipelined executes the three pipelined sweeps in fixed order.
func runAllPipelined(t *testing.T, cfg Config) []*PipelineData {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*PipelineData
	for _, run := range []func() (*PipelineData, error){
		r.RunVecAddPipelined, r.RunReducePipelined, r.RunMatMulPipelined,
	} {
		d, err := run()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestPipelineSweepSavings: every vecadd point must observe a strictly
// positive overlap saving with the default four chunks — the transfer-bound
// workload of the paper is exactly where streams pay — and the overlapped
// cost model must predict a saving of the same sign.
func TestPipelineSweepSavings(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunVecAddPipelined()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != len(cfg.SizesVecAdd) {
		t.Fatalf("points = %d, want %d", len(data.Points), len(cfg.SizesVecAdd))
	}
	for _, pt := range data.Points {
		if pt.Chunks < 4 {
			t.Fatalf("n=%d: chunks = %d, want ≥ 4", pt.N, pt.Chunks)
		}
		if pt.ObservedSaving <= 0 {
			t.Errorf("n=%d: observed saving %g not positive (seq %g, pipe %g)",
				pt.N, pt.ObservedSaving, pt.SequentialTime, pt.PipelinedTime)
		}
		if pt.PredictedSaving <= 0 {
			t.Errorf("n=%d: predicted saving %g not positive", pt.N, pt.PredictedSaving)
		}
		if f := pt.ObservedSavingFraction(); f <= 0 || f >= 1 {
			t.Errorf("n=%d: observed saving fraction %g outside (0,1)", pt.N, f)
		}
		if f := pt.PredictedSavingFraction(); f <= 0 || f >= 1 {
			t.Errorf("n=%d: predicted saving fraction %g outside (0,1)", pt.N, f)
		}
	}
}

// TestPipelineSweepWorkerIndependent: pipelined sweep output is
// byte-identical for any worker count.
func TestPipelineSweepWorkerIndependent(t *testing.T) {
	base := testConfig()
	base.Workers = 1
	want := runAllPipelined(t, base)

	for _, workers := range []int{2, 4} {
		cfg := testConfig()
		cfg.Workers = workers
		got := runAllPipelined(t, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential:\n%+v\nvs\n%+v", workers, got, want)
		}
	}
}

// TestPipelineSweepChunksConfig: Chunks threads through; negative is
// rejected up front.
func TestPipelineSweepChunksConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Chunks = 8
	cfg.SizesVecAdd = []int{1 << 12}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunVecAddPipelined()
	if err != nil {
		t.Fatal(err)
	}
	if data.Points[0].Chunks != 8 {
		t.Fatalf("chunks = %d, want 8", data.Points[0].Chunks)
	}

	cfg.Chunks = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Chunks accepted")
	}
}
