package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"atgpu/internal/simgpu"
)

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero device", func(c *Config) { c.Device = simgpu.Config{} }, "zero-value Device"},
		{"invalid device", func(c *Config) { c.Device.NumSMs = -1 }, "device"},
		{"negative sync", func(c *Config) { c.SyncCost = -time.Second }, "SyncCost"},
		{"zero vecadd size", func(c *Config) { c.SizesVecAdd = []int{1024, 0} }, "SizesVecAdd"},
		{"negative reduce size", func(c *Config) { c.SizesReduce = []int{-4} }, "SizesReduce"},
		{"zero matmul size", func(c *Config) { c.SizesMatMul = []int{0} }, "SizesMatMul"},
		{"fault rate > 1", func(c *Config) { c.FaultRate = 1.5 }, "FaultRate"},
		{"fault rate < 0", func(c *Config) { c.FaultRate = -0.1 }, "FaultRate"},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }, "MaxRetries"},
		{"negative watchdog", func(c *Config) { c.Watchdog = -time.Second }, "Watchdog"},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("%s: NewRunner accepted invalid config", tc.name)
		}
	}
}

// faultedConfig is a small sweep with enough injected faults to exercise
// retries without exhausting them.
func faultedConfig() Config {
	cfg := testConfig()
	cfg.FaultRate = 0.2
	cfg.FaultSeed = 11
	cfg.MaxRetries = 64
	return cfg
}

// TestFaultedSweepCompletes is the acceptance scenario: with a fixed fault
// seed and rate > 0 the sweep runs to completion, reporting per-point
// retry and degradation statistics instead of aborting.
func TestFaultedSweepCompletes(t *testing.T) {
	r, err := NewRunner(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatalf("faulted sweep aborted: %v", err)
	}
	if len(data.Points) != 3 {
		t.Fatalf("points = %d, want every size recorded", len(data.Points))
	}
	degraded := 0
	for _, p := range data.Points {
		if p.Degraded() {
			degraded++
		}
		if p.Failed && p.Err == "" {
			t.Fatalf("failed point n=%d has no error message", p.N)
		}
		if p.Degraded() && len(p.FaultLog) == 0 {
			t.Fatalf("degraded point n=%d has empty fault log", p.N)
		}
	}
	if degraded == 0 {
		t.Fatal("rate-0.2 sweep saw no faults; test is vacuous")
	}
	if data.FailedPoints() == len(data.Points) {
		t.Fatal("every point failed under a recoverable rate")
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries == 0 && s.WatchdogFires == 0 && s.DegradedLaunches == 0 && s.FailedPoints == 0 {
		t.Fatalf("summary carries no resilience aggregates: %+v", s)
	}
	if !strings.Contains(s.String(), "resilience:") {
		t.Fatal("faulted summary omits the resilience line")
	}
}

// TestFaultedSweepDeterministic: the same fault seed replays identical
// points — timings, retry counts and fault logs.
func TestFaultedSweepDeterministic(t *testing.T) {
	run := func() *WorkloadData {
		r, err := NewRunner(faultedConfig())
		if err != nil {
			t.Fatal(err)
		}
		d, err := r.RunReduce()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d2 := run(), run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("faulted sweeps diverged across replays:\n%+v\n%+v", d1, d2)
	}
}

// TestFaultRateZeroIdentical: at rate 0 no injector is attached, points
// carry no resilience data, and the summary has no resilience line — the
// byte-identical fast path.
func TestFaultRateZeroIdentical(t *testing.T) {
	r := newTestRunner(t)
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range data.Points {
		if p.Degraded() || p.FaultLog != nil || p.Transfers.Retries != 0 {
			t.Fatalf("fault-free point carries resilience data: %+v", p)
		}
	}
	s, err := Summarise(data)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s.String(), "resilience:") {
		t.Fatal("fault-free summary grew a resilience line")
	}
}

// TestRetryExhaustionRecordsPoint: at rate 1 with a tiny retry budget every
// transfer fails permanently; the sweep still completes, recording each
// point as failed with its error and fault log.
func TestRetryExhaustionRecordsPoint(t *testing.T) {
	cfg := testConfig()
	cfg.SizesVecAdd = []int{1 << 10}
	cfg.FaultRate = 1
	cfg.FaultSeed = 3
	cfg.MaxRetries = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunVecAdd()
	if err != nil {
		t.Fatalf("exhausted sweep aborted instead of recording: %v", err)
	}
	if len(data.Points) != 1 || !data.Points[0].Failed {
		t.Fatalf("points = %+v, want one failed point", data.Points)
	}
	p := data.Points[0]
	if p.Err == "" || len(p.FaultLog) == 0 {
		t.Fatalf("failed point lacks post-mortem data: err=%q log=%d entries", p.Err, len(p.FaultLog))
	}
	if data.FailedPoints() != 1 || len(data.Successful()) != 0 {
		t.Fatal("failure accounting wrong")
	}
	if _, err := Summarise(data); err == nil {
		t.Fatal("Summarise accepted a sweep with no successful points")
	}
}

// TestFiguresSkipFailedPoints: figures are built from successful points
// only, so a failed point shortens the series instead of poisoning it.
func TestFiguresSkipFailedPoints(t *testing.T) {
	d := &WorkloadData{Workload: "vecadd", Points: []WorkloadPoint{
		{N: 10, TotalTime: 1},
		{N: 20, Failed: true, Err: "injected"},
		{N: 30, TotalTime: 3},
	}}
	for _, f := range Figures(d) {
		for _, s := range f.Series {
			if len(s.X) != 2 {
				t.Fatalf("figure %s series %s has %d points, want 2", f.ID, s.Name, len(s.X))
			}
		}
	}
	if got := d.Sizes(); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("sizes = %v", got)
	}
}
