// Package experiments reproduces the paper's evaluation (Section IV): the
// predicted-versus-observed study of vector addition, reduction and matrix
// multiplication on the ATGPU model, regenerating the data behind
// Figures 3–6, Table I and the Section IV-D summary statistics.
//
// Methodology, following the paper: for each workload and input size we
// compute the ATGPU GPU-cost (Expression 2) and the SWGPU cost ("the GPU
// cost function of our model minus the data transfer"), then execute the
// same workload on the simulated GTX 650 observing kernel time and total
// time. Cost parameters are calibrated once per device by the calibrate
// package. Figures compare growth trends; Figure 6 compares the predicted
// transfer proportion Δ_T against the observed Δ_E.
//
// Input sizes default to a scaled-down sweep so the full suite runs in
// seconds; Full mode uses the paper's exact sizes (n up to 10⁷ elements,
// 2²⁶ reduction inputs, 1024² matrices), which take minutes under the
// cycle-level simulator.
//
// Sweeps execute their points on Config.Workers goroutines. Every point is
// fully isolated — its own Host/Device/Engine per the simgpu concurrency
// contract — and draws its inputs and fault seeds from (Seed, workload, N,
// point index) alone, so sweep output is byte-identical for any worker
// count.
package experiments

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"time"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/calibrate"
	"atgpu/internal/core"
	"atgpu/internal/faults"
	"atgpu/internal/mem"
	"atgpu/internal/models"
	"atgpu/internal/obs"
	"atgpu/internal/results"
	"atgpu/internal/sched"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// ErrCancelled is returned (alongside the partial data) when a sweep's
// Config.Context is cancelled mid-run: every point that completed before
// the cancellation is present, the rest are recorded as Failed with a
// cancellation message, and the caller decides whether to flush the
// partial results (the CLIs do, before exiting nonzero).
var ErrCancelled = errors.New("experiments: sweep cancelled")

// Config selects the device, transfer scheme and sweep scale.
type Config struct {
	// Device is the simulated GPU preset.
	Device simgpu.Config
	// Scheme selects the host↔device transfer technique.
	Scheme transfer.Scheme
	// SyncCost is σ, the fixed per-round synchronisation charge.
	SyncCost time.Duration
	// Full switches to the paper's exact input sizes.
	Full bool
	// Seed drives the random input generators.
	Seed int64
	// SizesVecAdd, SizesReduce and SizesMatMul override the sweep sizes
	// when non-nil (used by tests and custom studies); Full is then
	// ignored for that workload.
	SizesVecAdd []int
	SizesReduce []int
	SizesMatMul []int
	// SizesHistogram, SizesCompact, SizesTopK and SizesMonteCarlo override
	// the atomic-workload sweep sizes the same way.
	SizesHistogram  []int
	SizesCompact    []int
	SizesTopK       []int
	SizesMonteCarlo []int

	// Workers is the number of goroutines a sweep dispatches its points
	// to. 0 (the default) uses runtime.GOMAXPROCS(0); 1 runs the points
	// sequentially on the calling goroutine. Output is byte-identical for
	// any worker count: points derive all randomness from (Seed, workload,
	// N, point index), never from execution order.
	Workers int

	// Context, when non-nil, cancels the sweep between points: points
	// already dispatched run to completion, the rest are recorded as
	// Failed ("cancelled before start") and the sweep returns the partial
	// data with ErrCancelled. Nil means never cancelled.
	Context context.Context

	// Chunks is the chunk (or matmul band) count of the pipelined sweeps
	// (RunVecAddPipelined and friends). 0 uses defaultChunks.
	Chunks int

	// FaultRate enables fault injection when > 0: the per-decision
	// probability, in [0,1], of a transfer or launch fault. At 0 (the
	// default) no injector is attached and every output is identical to a
	// build without the fault machinery.
	FaultRate float64
	// FaultSeed drives the injector and retry jitter; the same seed and
	// rate replay the same faults, retries and timeline.
	FaultSeed int64
	// MaxRetries overrides the transfer retry budget when > 0.
	MaxRetries int
	// Watchdog overrides the kernel watchdog timeout when > 0.
	Watchdog time.Duration

	// Obs selects unified tracing/metrics collection for sweep points.
	// Each point records into its own sinks (the per-point hosts are
	// concurrent); the sweep folds them in point order — tagged
	// "<workload> n=<N>" — so the merged report is byte-identical for
	// any worker count. With Obs.Trace set, points also run with a
	// device Tracer attached, embedding per-block spans in the trace.
	Obs obs.Options

	// SchedObserver, when non-nil, receives sched.Observer callbacks for
	// every sweep point dispatched (one scheduler job per point). It is
	// an operational hook — the atgpud telemetry plane counts live
	// points through it — and never affects results: observed and
	// unobserved sweeps are byte-identical.
	SchedObserver sched.Observer

	// Lint arms a static-analysis pre-flight on every point's kernel
	// launches: ModeWarn reports findings to LintWriter, ModeError also
	// refuses launches with error-severity findings. Off by default.
	Lint analyze.Mode
	// LintWriter receives textual lint reports for kernels with findings
	// (nil discards them). Under Workers > 1, reports from different
	// points may interleave, so keep this off stdout when diffing sweeps.
	LintWriter io.Writer
}

// Validate rejects configurations that would otherwise surface as opaque
// failures deep inside a sweep.
func (c Config) Validate() error {
	if c.Device == (simgpu.Config{}) {
		return fmt.Errorf("experiments: zero-value Device config; use a preset such as simgpu.GTX650()")
	}
	if err := c.Device.Validate(); err != nil {
		return fmt.Errorf("experiments: device: %w", err)
	}
	if c.SyncCost < 0 {
		return fmt.Errorf("experiments: negative SyncCost %v", c.SyncCost)
	}
	if c.Workers < 0 {
		return fmt.Errorf("experiments: negative Workers %d", c.Workers)
	}
	if c.Chunks < 0 {
		return fmt.Errorf("experiments: negative Chunks %d", c.Chunks)
	}
	for _, s := range []struct {
		name  string
		sizes []int
	}{
		{"SizesVecAdd", c.SizesVecAdd},
		{"SizesReduce", c.SizesReduce},
		{"SizesMatMul", c.SizesMatMul},
		{"SizesHistogram", c.SizesHistogram},
		{"SizesCompact", c.SizesCompact},
		{"SizesTopK", c.SizesTopK},
		{"SizesMonteCarlo", c.SizesMonteCarlo},
	} {
		for _, n := range s.sizes {
			if n <= 0 {
				return fmt.Errorf("experiments: %s contains non-positive size %d", s.name, n)
			}
		}
	}
	if c.FaultRate < 0 || c.FaultRate > 1 {
		return fmt.Errorf("experiments: FaultRate %v outside [0,1]", c.FaultRate)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("experiments: negative MaxRetries %d", c.MaxRetries)
	}
	if c.Watchdog < 0 {
		return fmt.Errorf("experiments: negative Watchdog %v", c.Watchdog)
	}
	return nil
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctx resolves the cancellation context (nil = never cancelled).
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// DefaultConfig returns the GTX650-like setup used throughout
// EXPERIMENTS.md: pageable transfers (the cudaMemcpy default, which
// reproduces the paper's ~84% vecadd transfer share), σ = 50 µs,
// scaled-down sweeps.
func DefaultConfig() Config {
	return Config{
		Device:   simgpu.GTX650(),
		Scheme:   transfer.Pageable,
		SyncCost: 50 * time.Microsecond,
		Seed:     1,
	}
}

// Runner executes workload sweeps with calibrated cost parameters. A
// Runner is safe for concurrent use: sweeps spawn their own hosts and all
// shared state (link, calibrated parameters, config) is read-only after
// construction.
type Runner struct {
	cfg    Config
	link   *transfer.Link
	params core.CostParams
	calib  calibrate.Result
}

// NewRunner calibrates cost parameters on a throwaway device and returns a
// ready runner. Calibration always runs fault-free: cost parameters
// describe the healthy machine.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	link, cal, err := Calibrate(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, link: link, params: cal.Params, calib: cal}, nil
}

// Calibrate runs the fault-free cost-parameter calibration for a config's
// device, scheme and σ, returning the link the runner should transfer
// over and the calibration result. Calibration depends only on (Device,
// Scheme, SyncCost), so callers serving many configurations — the atgpud
// service — cache the result by that key and build runners with
// NewRunnerCalibrated instead of paying a calibration per request.
func Calibrate(cfg Config) (*transfer.Link, calibrate.Result, error) {
	link := transfer.PCIeGen3x8Link()

	calCfg := cfg.Device
	// A modest global memory suffices for the calibration microkernels
	// and keeps allocation cheap.
	if calCfg.GlobalWords > 1<<22 {
		calCfg.GlobalWords = 1 << 22
	}
	dev, err := simgpu.New(calCfg)
	if err != nil {
		return nil, calibrate.Result{}, err
	}
	dev.SetUniformProver(analyze.UniformProver)
	eng, err := transfer.NewEngine(link, cfg.Scheme)
	if err != nil {
		return nil, calibrate.Result{}, err
	}
	cal, err := calibrate.Run(dev, eng, cfg.SyncCost)
	if err != nil {
		return nil, calibrate.Result{}, err
	}
	return link, cal, nil
}

// NewRunnerCalibrated builds a runner from an existing calibration —
// obtained from Calibrate (or another runner's Calibration) for the same
// Device, Scheme and SyncCost. It validates the config but runs no
// simulation, so it is cheap enough to build per request.
func NewRunnerCalibrated(cfg Config, link *transfer.Link, cal calibrate.Result) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if link == nil {
		return nil, fmt.Errorf("experiments: nil link")
	}
	return &Runner{cfg: cfg, link: link, params: cal.Params, calib: cal}, nil
}

// CostParams exposes the calibrated parameters.
func (r *Runner) CostParams() core.CostParams { return r.params }

// Calibration exposes the full calibration result.
func (r *Runner) Calibration() calibrate.Result { return r.calib }

// Config returns the runner configuration.
func (r *Runner) Config() Config { return r.cfg }

// modelParams builds the abstract machine instance for a launch of k
// blocks: the perfect GPU has one multiprocessor per block; M and G follow
// the concrete device so feasibility checks bind.
func (r *Runner) modelParams(blocks int) core.Params {
	return core.ForProblem(blocks, r.cfg.Device.WarpWidth,
		r.cfg.Device.SharedWords, r.cfg.Device.GlobalWords)
}

// derivedSeed hashes (base, domain, workload, n, idx) into a deterministic
// non-negative rand.Source seed. Points seeded this way are independent of
// execution order, which is what makes parallel sweeps byte-identical to
// sequential ones; the domain tag keeps input streams and fault streams
// apart even when Seed == FaultSeed.
func derivedSeed(base int64, domain, workload string, n, idx int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(domain))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(idx))
	h.Write(buf[:])
	return int64(h.Sum64() & (1<<63 - 1))
}

// inputRNG returns the input generator for one sweep point.
func (r *Runner) inputRNG(workload string, n, idx int) *rand.Rand {
	return rand.New(rand.NewSource(derivedSeed(r.cfg.Seed, "input", workload, n, idx)))
}

// newHost builds a device+host pair whose global memory holds footprint
// words (plus alignment slack), so sweeps over large n do not allocate the
// preset's full G per point. A footprint the preset cannot hold fails here,
// naming the workload and size, rather than as an opaque Malloc error
// mid-sweep.
//
// With FaultRate > 0, the pair is armed with a fresh seeded injector
// shared between the transfer engine and the host, so one fault log covers
// the whole point; the injector seed derives from (FaultSeed, workload, n,
// idx) so sweeps replay exactly at any worker count.
func (r *Runner) newHost(footprint int, workload string, n, idx int) (*simgpu.Host, error) {
	devCfg := r.cfg.Device
	slack := 4 * devCfg.WarpWidth
	need := footprint + slack
	if need > devCfg.GlobalWords {
		return nil, fmt.Errorf("experiments: %s n=%d: footprint %d words (+%d alignment slack) exceeds device %s global memory G=%d",
			workload, n, footprint, slack, devCfg.Name, devCfg.GlobalWords)
	}
	devCfg.GlobalWords = need
	dev, err := simgpu.New(devCfg)
	if err != nil {
		return nil, err
	}
	dev.SetUniformProver(analyze.UniformProver)
	eng, err := transfer.NewEngine(r.link, r.cfg.Scheme)
	if err != nil {
		return nil, err
	}
	h, err := simgpu.NewHost(dev, eng, r.cfg.SyncCost)
	if err != nil {
		return nil, err
	}
	if r.cfg.FaultRate > 0 {
		seed := derivedSeed(r.cfg.FaultSeed, "fault", workload, n, idx)
		inj, err := faults.NewRate(faults.RateConfig{
			Seed:         seed,
			TransferRate: r.cfg.FaultRate,
			KernelRate:   r.cfg.FaultRate,
		})
		if err != nil {
			return nil, err
		}
		policy := transfer.DefaultRetryPolicy()
		if r.cfg.MaxRetries > 0 {
			policy.MaxRetries = r.cfg.MaxRetries
		}
		policy.Seed = seed + 1
		if err := eng.SetFaults(inj, policy); err != nil {
			return nil, err
		}
		if err := h.SetFaults(inj, r.cfg.Watchdog, 0); err != nil {
			return nil, err
		}
	}
	if r.cfg.Obs.Enabled() {
		h.SetObs(r.cfg.Obs.New())
		if r.cfg.Obs.Trace {
			h.SetTracer(&simgpu.Tracer{MaxEvents: r.cfg.Obs.TraceMaxEvents})
		}
	}
	if r.cfg.Lint != analyze.ModeOff {
		// Analyse against the footprint-sized device the point actually
		// launches on, so bounds findings match its traps.
		cp := r.params
		h.SetPreLaunch(analyze.Gate(analyze.FromConfig(devCfg), &cp,
			r.cfg.Lint, r.cfg.LintWriter))
	}
	return h, nil
}

// WorkloadPoint is one input size's predicted and observed outcome.
type WorkloadPoint struct {
	// N is the input size (vector length or matrix side).
	N int
	// ATGPUCost and SWGPUCost are the predicted costs in seconds.
	ATGPUCost, SWGPUCost float64
	// TotalTime and KernelTime are the observed simulated times in
	// seconds; TransferTime and SyncTime complete the decomposition.
	TotalTime, KernelTime, TransferTime, SyncTime float64
	// DeltaPredicted is Δ_T, the predicted transfer share of cost.
	DeltaPredicted float64
	// DeltaObserved is Δ_E, the observed transfer share of total time.
	DeltaObserved float64

	// Failed marks a point whose observed run died despite the recovery
	// machinery (retry or relaunch budget exhausted). The sweep records
	// it — timings partial, Err and FaultLog filled — and continues.
	Failed bool
	// Err is the failure message when Failed.
	Err string
	// Transfers carries the point's full transfer-engine totals,
	// including the retry/corruption/drop/stall resilience counters.
	Transfers transfer.Stats
	// Resilience carries the host's fault-recovery counters (watchdog
	// fires, relaunches, degraded launches, failed SMs).
	Resilience simgpu.ResilienceStats
	// FaultLog holds the injector's event log for the point.
	FaultLog []string
	// Obs is the point's observability report (nil unless Config.Obs
	// enables collection).
	Obs *obs.Report
}

// Degraded reports whether the point needed any fault recovery.
func (p WorkloadPoint) Degraded() bool {
	return p.Failed || p.Transfers.Faulted() || p.Resilience.Degraded()
}

// WorkloadData is one workload's full sweep.
type WorkloadData struct {
	// Workload names the algorithm ("vecadd", "reduce", "matmul").
	Workload string
	// Points holds one entry per input size, ascending; under fault
	// injection some may be Failed. Figures and summaries use Successful.
	Points []WorkloadPoint
	// Records holds the canonical result records, one per point in
	// point order, stamped with the run identity (machine, seed,
	// workers, fault plan). Summaries, figures and every persistence
	// path render from these.
	Records []results.Record
	// Transfers and Resilience aggregate every point's engine and host
	// totals — failed points included — folded in point order with the
	// stats Merge methods (via results.Fold over Records).
	Transfers  transfer.Stats
	Resilience simgpu.ResilienceStats
	// Obs folds every point's report in point order, each tagged
	// "<workload> n=<N>" (nil unless Config.Obs enables collection).
	Obs *obs.Report
}

// Successful returns the non-failed points, preserving order.
func (w *WorkloadData) Successful() []WorkloadPoint {
	ok := make([]WorkloadPoint, 0, len(w.Points))
	for _, p := range w.Points {
		if !p.Failed {
			ok = append(ok, p)
		}
	}
	return ok
}

// FailedPoints counts the points that exhausted recovery.
func (w *WorkloadData) FailedPoints() int {
	n := 0
	for _, p := range w.Points {
		if p.Failed {
			n++
		}
	}
	return n
}

// Sizes returns the x vector over successful points.
func (w *WorkloadData) Sizes() []float64 { return results.Sizes(w.records()) }

// records returns the canonical records, deriving bare ones (payload
// only, no run identity) when the sweep was assembled by hand — test
// fixtures and partial data — rather than by a runner.
func (w *WorkloadData) records() []results.Record {
	if w.Records != nil {
		return w.Records
	}
	recs := make([]results.Record, len(w.Points))
	for i, p := range w.Points {
		recs[i] = PointRecord("sweep", w.Workload, p)
	}
	return recs
}

// PointRecord converts one sweep point into the canonical record
// shape: payload only — predicted/observed costs, engine and recovery
// counters, metrics snapshot — with no run identity stamped. Runner
// sweeps stamp identity on top (see WorkloadData.Records); callers
// assembling records outside a runner get the bare conversion.
func PointRecord(kind, workload string, pt WorkloadPoint) results.Record {
	rec := results.Record{
		Kind:     kind,
		Workload: workload,
		N:        pt.N,
		Failed:   pt.Failed,
		Err:      pt.Err,
	}
	if pt.ATGPUCost != 0 || pt.SWGPUCost != 0 || pt.DeltaPredicted != 0 {
		rec.Predicted = &results.Predicted{
			ATGPUCost: pt.ATGPUCost,
			SWGPUCost: pt.SWGPUCost,
			Delta:     pt.DeltaPredicted,
		}
	}
	if pt.TotalTime > 0 || pt.Failed {
		rec.Observed = &results.Observed{
			TotalS:    pt.TotalTime,
			KernelS:   pt.KernelTime,
			TransferS: pt.TransferTime,
			SyncS:     pt.SyncTime,
			Delta:     pt.DeltaObserved,
		}
	}
	if pt.Transfers != (transfer.Stats{}) {
		t := pt.Transfers
		rec.Transfers = &t
	}
	if pt.Resilience != (simgpu.ResilienceStats{}) {
		rs := pt.Resilience
		rec.Resilience = &rs
	}
	if snap := pt.Obs.Snapshot(); !snap.Empty() {
		rec.Obs = &snap
	}
	return rec
}

// Record converts one point into the canonical record stamped with
// this runner's full run identity: the machine (device, scheme, σ),
// the input seed and the fault plan.
func (r *Runner) Record(kind, workload string, pt WorkloadPoint) results.Record {
	rec := PointRecord(kind, workload, pt)
	r.stampIdentity(&rec)
	return rec
}

// stampIdentity fills a record's run-identity fields from the config.
// The git stamp and worker count are deliberately not set here: sweep
// data must be byte-identical for any worker count and across commits
// that don't change behaviour, so the CLIs stamp both on the records
// they persist.
func (r *Runner) stampIdentity(rec *results.Record) {
	rec.Seed = r.cfg.Seed
	rec.Machine = &results.Machine{
		Device:     r.cfg.Device,
		Scheme:     r.cfg.Scheme.String(),
		SyncCostUs: r.cfg.SyncCost.Microseconds(),
	}
	if r.cfg.FaultRate > 0 {
		rec.Faults = &results.FaultPlan{
			Rate:       r.cfg.FaultRate,
			Seed:       r.cfg.FaultSeed,
			MaxRetries: r.cfg.MaxRetries,
			WatchdogUs: r.cfg.Watchdog.Microseconds(),
		}
	}
}

// runSweep executes one point per size through point, dispatching to the
// configured worker count via the shared scheduler, and assembles the
// results in size order. Each point call must be self-contained (its own
// host, its own derived seeds) so the assembly is byte-identical for any
// worker count. On error the sweep reports the lowest-index failure — the
// same error a sequential run would have stopped on, since every earlier
// point succeeded. A panicking point does not crash the sweep (or the
// process hosting it): it is recorded as a Failed point with the stack in
// its fault log. Cancellation via Config.Context records undispatched
// points as Failed and returns the partial data with ErrCancelled.
func (r *Runner) runSweep(workload string, sizes []int, point func(idx, n int) (WorkloadPoint, error)) (*WorkloadData, error) {
	data := &WorkloadData{Workload: workload, Points: make([]WorkloadPoint, len(sizes))}
	errs := sched.RunOpts(r.cfg.ctx(), len(sizes),
		sched.Options{Workers: r.cfg.workers(), Observer: r.cfg.SchedObserver},
		func(i int) error {
			pt, err := point(i, sizes[i])
			if err != nil {
				return err
			}
			data.Points[i] = pt
			return nil
		})
	cancelled, err := absorbSweepErrs(errs, func(i int, failed WorkloadPoint) {
		failed.N = sizes[i]
		data.Points[i] = failed
	})
	if err != nil {
		return nil, err
	}
	data.Records = make([]results.Record, len(data.Points))
	for i := range data.Points {
		data.Records[i] = r.Record("sweep", workload, data.Points[i])
	}
	agg := results.Fold(data.Records)
	data.Transfers = agg.Transfers
	data.Resilience = agg.Resilience
	if r.cfg.Obs.Enabled() {
		data.Obs = r.newSweepReport()
		for i := range data.Points {
			data.Obs.Merge(data.Points[i].Obs, fmt.Sprintf("%s n=%d", workload, data.Points[i].N))
		}
	}
	if cancelled {
		return data, ErrCancelled
	}
	return data, nil
}

// absorbSweepErrs folds a scheduler error slice into per-point outcomes:
// panics and cancellations become Failed points (delivered through
// record), any other error — a genuine configuration or programming
// failure — aborts the sweep with the lowest-index occurrence, exactly as
// before the scheduler extraction. The returned flag reports whether any
// point was cancelled.
func absorbSweepErrs(errs []error, record func(i int, failed WorkloadPoint)) (cancelled bool, err error) {
	for i, e := range errs {
		var pe *sched.PanicError
		switch {
		case e == nil:
		case errors.As(e, &pe):
			record(i, WorkloadPoint{
				Failed:   true,
				Err:      pe.Error(),
				FaultLog: []string{"panic stack:\n" + string(pe.Stack)},
			})
		case errors.Is(e, sched.ErrCancelled):
			record(i, WorkloadPoint{Failed: true, Err: e.Error()})
			cancelled = true
		default:
			return false, e
		}
	}
	return cancelled, nil
}

// newSweepReport builds the empty fold target for per-point reports,
// with a recorder attached when tracing is on so MergeTagged has a
// destination.
func (r *Runner) newSweepReport() *obs.Report {
	rep := &obs.Report{}
	if r.cfg.Obs.Trace {
		rep.Trace = obs.NewRecorder(r.cfg.Obs.TraceMaxEvents)
	}
	return rep
}

// randWords draws n words uniformly from [-1000, 1000].
func randWords(rng *rand.Rand, n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(rng.Intn(2001) - 1000)
	}
	return w
}

// randBits draws n words from {0,1}, the paper's reduction inputs
// ("randomly generated vectors of 0/1 values").
func randBits(rng *rand.Rand, n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(rng.Intn(2))
	}
	return w
}

// SweepSizes returns the effective sweep sizes for a workload under this
// config: the explicit override when set, otherwise the paper's exact
// sizes in Full mode or the scaled-down defaults. The atgpud service uses
// this to pin a request's sizes before computing its cache key.
func (c Config) SweepSizes(workload string) ([]int, error) {
	switch workload {
	case "vecadd":
		// Paper: n = 1e6 … 1e7 ("from n = 1,000,000 → 10,000,000");
		// scaled 10× down otherwise.
		if c.SizesVecAdd != nil {
			return c.SizesVecAdd, nil
		}
		step := 100_000
		if c.Full {
			step = 1_000_000
		}
		sizes := make([]int, 10)
		for i := range sizes {
			sizes[i] = (i + 1) * step
		}
		return sizes, nil
	case "reduce":
		// Paper: n = 2^16 … 2^26 in Full mode, 2^16 … 2^22 otherwise.
		if c.SizesReduce != nil {
			return c.SizesReduce, nil
		}
		hi := 22
		if c.Full {
			hi = 26
		}
		var sizes []int
		for e := 16; e <= hi; e++ {
			sizes = append(sizes, 1<<e)
		}
		return sizes, nil
	case "matmul":
		// Paper: n = 32, 64, …, 1024 doublings in Full mode, up to 256
		// otherwise.
		if c.SizesMatMul != nil {
			return c.SizesMatMul, nil
		}
		hi := 256
		if c.Full {
			hi = 1024
		}
		var sizes []int
		for n := 32; n <= hi; n *= 2 {
			sizes = append(sizes, n)
		}
		return sizes, nil
	case "histogram", "histogram-priv":
		if c.SizesHistogram != nil {
			return c.SizesHistogram, nil
		}
		return atomicSweepSizes(c.Full), nil
	case "compact":
		if c.SizesCompact != nil {
			return c.SizesCompact, nil
		}
		return atomicSweepSizes(c.Full), nil
	case "topk":
		if c.SizesTopK != nil {
			return c.SizesTopK, nil
		}
		return atomicSweepSizes(c.Full), nil
	case "montecarlo":
		if c.SizesMonteCarlo != nil {
			return c.SizesMonteCarlo, nil
		}
		// Thread counts; each thread runs MonteCarloTrials draws, so the
		// sweep is an order smaller than the memory-bound workloads.
		if c.Full {
			return []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}, nil
		}
		return []int{1 << 8, 1 << 10, 1 << 12}, nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", workload)
}

// atomicSweepSizes is the shared default ladder of the atomic workloads:
// doublings from 2^10, three octaves further in Full mode.
func atomicSweepSizes(full bool) []int {
	hi := 16
	if full {
		hi = 22
	}
	var sizes []int
	for e := 10; e <= hi; e += 2 {
		sizes = append(sizes, 1<<e)
	}
	return sizes
}

// mustSweepSizes resolves sizes for a workload known to be valid.
func (c Config) mustSweepSizes(workload string) []int {
	sizes, err := c.SweepSizes(workload)
	if err != nil {
		panic(err)
	}
	return sizes
}

// VecAddSizes returns the effective vecadd sweep sizes.
func (r *Runner) VecAddSizes() []int { return r.cfg.mustSweepSizes("vecadd") }

// ReduceSizes returns the effective reduce sweep sizes.
func (r *Runner) ReduceSizes() []int { return r.cfg.mustSweepSizes("reduce") }

// MatMulSizes returns the effective matmul sweep sizes.
func (r *Runner) MatMulSizes() []int { return r.cfg.mustSweepSizes("matmul") }

// RunVecAdd sweeps vector addition (paper §IV-A).
func (r *Runner) RunVecAdd() (*WorkloadData, error) {
	return r.runSweep("vecadd", r.VecAddSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.VecAdd{N: n}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("vecadd n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("vecadd n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), "vecadd", n, idx)
			if err != nil {
				return nil, err
			}
			rng := r.inputRNG("vecadd", n, idx)
			a := randWords(rng, n)
			b := randWords(rng, n)
			if _, err := alg.Run(h, a, b); err != nil {
				return h, fmt.Errorf("vecadd n=%d: run: %w", n, err)
			}
			return h, nil
		})
		return pt, err
	})
}

// RunReduce sweeps reduction (paper §IV-B).
func (r *Runner) RunReduce() (*WorkloadData, error) {
	b := r.cfg.Device.WarpWidth
	return r.runSweep("reduce", r.ReduceSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.Reduce{N: n}

		// The perfect-GPU instance needs a multiprocessor per block of
		// the largest round.
		analysis, err := alg.Analyze(r.modelParams((n + b - 1) / b))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("reduce n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("reduce n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(b), "reduce", n, idx)
			if err != nil {
				return nil, err
			}
			in := randBits(r.inputRNG("reduce", n, idx), n)
			got, err := alg.Run(h, in)
			if err != nil {
				return h, fmt.Errorf("reduce n=%d: run: %w", n, err)
			}
			if want := algorithms.ReduceReference(in); got != want {
				return h, fmt.Errorf("reduce n=%d: %w: got %d want %d",
					n, algorithms.ErrVerifyFail, got, want)
			}
			return h, nil
		})
		return pt, err
	})
}

// RunMatMul sweeps matrix multiplication (paper §IV-C).
func (r *Runner) RunMatMul() (*WorkloadData, error) {
	return r.runSweep("matmul", r.MatMulSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.MatMul{N: n}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("matmul n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("matmul n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), "matmul", n, idx)
			if err != nil {
				return nil, err
			}
			rng := r.inputRNG("matmul", n, idx)
			a := randWords(rng, n*n)
			b := randWords(rng, n*n)
			if _, err := alg.Run(h, a, b); err != nil {
				return h, fmt.Errorf("matmul n=%d: run: %w", n, err)
			}
			return h, nil
		})
		return pt, err
	})
}

// analysisFor builds one workload size's per-round model analysis, with
// the same launch geometry the observed runs use.
func (r *Runner) analysisFor(workload string, n int) (*core.Analysis, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: %s: non-positive size %d", workload, n)
	}
	b := r.cfg.Device.WarpWidth
	switch workload {
	case "vecadd":
		alg := algorithms.VecAdd{N: n}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "reduce":
		return algorithms.Reduce{N: n}.Analyze(r.modelParams((n + b - 1) / b))
	case "matmul":
		alg := algorithms.MatMul{N: n}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "histogram":
		alg := algorithms.Histogram{N: n, Bins: HistogramSweepBins}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "histogram-priv":
		alg := algorithms.Histogram{N: n, Bins: HistogramSweepBins, Privatized: true}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "compact":
		alg := algorithms.Compact{N: n}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "topk":
		alg := algorithms.TopK{N: n, K: TopKSweepK}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	case "montecarlo":
		alg := algorithms.MonteCarlo{N: n, Trials: MonteCarloTrials}
		return alg.Analyze(r.modelParams(alg.Blocks(b)))
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", workload)
}

// PredictPoint prices one workload size on the abstract model without
// running the simulator: a WorkloadPoint with only the model-side fields
// (ATGPUCost, SWGPUCost, DeltaPredicted) and N filled — the "analyze"
// half of a sweep point. atgpud serves its analyze jobs through this.
func (r *Runner) PredictPoint(workload string, n int) (WorkloadPoint, error) {
	a, err := r.analysisFor(workload, n)
	if err != nil {
		return WorkloadPoint{}, err
	}
	pt, err := r.predict(a)
	if err != nil {
		return WorkloadPoint{}, err
	}
	pt.N = n
	return pt, nil
}

// predict fills the model-side fields of a point from an analysis.
func (r *Runner) predict(a *core.Analysis) (WorkloadPoint, error) {
	var pt WorkloadPoint
	bd, err := core.GPUCostBreakdown(a, r.params)
	if err != nil {
		return pt, err
	}
	pt.ATGPUCost = bd.Total()
	pt.DeltaPredicted = bd.TransferFraction()
	sw, err := models.SWGPUCost(a, r.params)
	if err != nil {
		return pt, err
	}
	pt.SWGPUCost = sw
	return pt, nil
}

// faultInduced reports whether err is a genuine recovery-exhaustion
// outcome of injected faults — the only failures a faulted sweep may
// absorb into a point. Anything else (allocation failures, invalid
// launches, programming errors) must surface to the caller.
func faultInduced(err error) bool {
	return errors.Is(err, transfer.ErrRetriesExhausted) ||
		errors.Is(err, simgpu.ErrWatchdogExhausted) ||
		errors.Is(err, algorithms.ErrVerifyFail)
}

// observePoint runs one sweep point's observed simulation with per-point
// fault isolation: under injection (FaultRate > 0) a recovery-exhaustion
// failure is recorded on the point — partial timings, Err, retry counts
// and the fault log — and the sweep continues. Non-fault errors, and every
// error of a fault-free run, propagate unchanged, so configuration and
// programming mistakes are never mistaken for fault casualties. body
// returns the host it ran on (possibly non-nil alongside an error, for
// post-mortem accounting).
func (r *Runner) observePoint(pt *WorkloadPoint, body func() (*simgpu.Host, error)) error {
	h, err := body()
	if err != nil {
		if r.cfg.FaultRate > 0 && faultInduced(err) {
			pt.Failed = true
			pt.Err = err.Error()
			if h != nil {
				pt.observe(h.Report())
				pt.recordFaults(h)
				pt.Obs = h.SnapshotObs()
			}
			return nil
		}
		return err
	}
	pt.observe(h.Report())
	pt.recordFaults(h)
	pt.Obs = h.SnapshotObs()
	return nil
}

// observe fills the simulator-side fields from a host report.
func (pt *WorkloadPoint) observe(rep simgpu.RunReport) {
	pt.TotalTime = rep.Total.Seconds()
	pt.KernelTime = rep.Kernel.Seconds()
	pt.TransferTime = rep.Transfer.Seconds()
	pt.SyncTime = rep.Sync.Seconds()
	pt.DeltaObserved = rep.TransferFraction()

	pt.Transfers = rep.Transfers
	pt.Resilience = rep.Resilience
}

// recordFaults copies the host's fault log onto the point (no-op without
// an injector).
func (pt *WorkloadPoint) recordFaults(h *simgpu.Host) {
	for _, ev := range h.FaultEvents() {
		pt.FaultLog = append(pt.FaultLog, ev.String())
	}
}
