// Package experiments reproduces the paper's evaluation (Section IV): the
// predicted-versus-observed study of vector addition, reduction and matrix
// multiplication on the ATGPU model, regenerating the data behind
// Figures 3–6, Table I and the Section IV-D summary statistics.
//
// Methodology, following the paper: for each workload and input size we
// compute the ATGPU GPU-cost (Expression 2) and the SWGPU cost ("the GPU
// cost function of our model minus the data transfer"), then execute the
// same workload on the simulated GTX 650 observing kernel time and total
// time. Cost parameters are calibrated once per device by the calibrate
// package. Figures compare growth trends; Figure 6 compares the predicted
// transfer proportion Δ_T against the observed Δ_E.
//
// Input sizes default to a scaled-down sweep so the full suite runs in
// seconds; Full mode uses the paper's exact sizes (n up to 10⁷ elements,
// 2²⁶ reduction inputs, 1024² matrices), which take minutes under the
// cycle-level simulator.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"atgpu/internal/algorithms"
	"atgpu/internal/calibrate"
	"atgpu/internal/core"
	"atgpu/internal/mem"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// Config selects the device, transfer scheme and sweep scale.
type Config struct {
	// Device is the simulated GPU preset.
	Device simgpu.Config
	// Scheme selects the host↔device transfer technique.
	Scheme transfer.Scheme
	// SyncCost is σ, the fixed per-round synchronisation charge.
	SyncCost time.Duration
	// Full switches to the paper's exact input sizes.
	Full bool
	// Seed drives the random input generators.
	Seed int64
	// SizesVecAdd, SizesReduce and SizesMatMul override the sweep sizes
	// when non-nil (used by tests and custom studies); Full is then
	// ignored for that workload.
	SizesVecAdd []int
	SizesReduce []int
	SizesMatMul []int
}

// DefaultConfig returns the GTX650-like setup used throughout
// EXPERIMENTS.md: pageable transfers (the cudaMemcpy default, which
// reproduces the paper's ~84% vecadd transfer share), σ = 50 µs,
// scaled-down sweeps.
func DefaultConfig() Config {
	return Config{
		Device:   simgpu.GTX650(),
		Scheme:   transfer.Pageable,
		SyncCost: 50 * time.Microsecond,
		Seed:     1,
	}
}

// Runner executes workload sweeps with calibrated cost parameters.
type Runner struct {
	cfg    Config
	link   *transfer.Link
	params core.CostParams
	calib  calibrate.Result
}

// NewRunner calibrates cost parameters on a throwaway device and returns a
// ready runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	link := transfer.PCIeGen3x8Link()

	calCfg := cfg.Device
	// A modest global memory suffices for the calibration microkernels
	// and keeps allocation cheap.
	if calCfg.GlobalWords > 1<<22 {
		calCfg.GlobalWords = 1 << 22
	}
	dev, err := simgpu.New(calCfg)
	if err != nil {
		return nil, err
	}
	eng, err := transfer.NewEngine(link, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	cal, err := calibrate.Run(dev, eng, cfg.SyncCost)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, link: link, params: cal.Params, calib: cal}, nil
}

// CostParams exposes the calibrated parameters.
func (r *Runner) CostParams() core.CostParams { return r.params }

// Calibration exposes the full calibration result.
func (r *Runner) Calibration() calibrate.Result { return r.calib }

// Config returns the runner configuration.
func (r *Runner) Config() Config { return r.cfg }

// modelParams builds the abstract machine instance for a launch of k
// blocks: the perfect GPU has one multiprocessor per block; M and G follow
// the concrete device so feasibility checks bind.
func (r *Runner) modelParams(blocks int) core.Params {
	return core.ForProblem(blocks, r.cfg.Device.WarpWidth,
		r.cfg.Device.SharedWords, r.cfg.Device.GlobalWords)
}

// newHost builds a device+host pair whose global memory holds footprint
// words (plus alignment slack), so sweeps over large n do not allocate the
// preset's full G per point.
func (r *Runner) newHost(footprint int) (*simgpu.Host, error) {
	devCfg := r.cfg.Device
	need := footprint + 4*devCfg.WarpWidth
	if need < devCfg.GlobalWords {
		devCfg.GlobalWords = need
	}
	dev, err := simgpu.New(devCfg)
	if err != nil {
		return nil, err
	}
	eng, err := transfer.NewEngine(r.link, r.cfg.Scheme)
	if err != nil {
		return nil, err
	}
	return simgpu.NewHost(dev, eng, r.cfg.SyncCost)
}

// WorkloadPoint is one input size's predicted and observed outcome.
type WorkloadPoint struct {
	// N is the input size (vector length or matrix side).
	N int
	// ATGPUCost and SWGPUCost are the predicted costs in seconds.
	ATGPUCost, SWGPUCost float64
	// TotalTime and KernelTime are the observed simulated times in
	// seconds; TransferTime and SyncTime complete the decomposition.
	TotalTime, KernelTime, TransferTime, SyncTime float64
	// DeltaPredicted is Δ_T, the predicted transfer share of cost.
	DeltaPredicted float64
	// DeltaObserved is Δ_E, the observed transfer share of total time.
	DeltaObserved float64
}

// WorkloadData is one workload's full sweep.
type WorkloadData struct {
	// Workload names the algorithm ("vecadd", "reduce", "matmul").
	Workload string
	// Points holds one entry per input size, ascending.
	Points []WorkloadPoint
}

// Sizes returns the x vector.
func (w *WorkloadData) Sizes() []float64 {
	xs := make([]float64, len(w.Points))
	for i, p := range w.Points {
		xs[i] = float64(p.N)
	}
	return xs
}

// column extracts one metric across points.
func (w *WorkloadData) column(f func(WorkloadPoint) float64) []float64 {
	ys := make([]float64, len(w.Points))
	for i, p := range w.Points {
		ys[i] = f(p)
	}
	return ys
}

// randWords draws n words uniformly from [-1000, 1000].
func randWords(rng *rand.Rand, n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(rng.Intn(2001) - 1000)
	}
	return w
}

// randBits draws n words from {0,1}, the paper's reduction inputs
// ("randomly generated vectors of 0/1 values").
func randBits(rng *rand.Rand, n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(rng.Intn(2))
	}
	return w
}

// VecAddSizes returns the sweep sizes: the paper's n = 1e6 … 1e7 in Full
// mode ("from n = 1,000,000 → 10,000,000"), a 10× scaled version
// otherwise.
func (r *Runner) VecAddSizes() []int {
	if r.cfg.SizesVecAdd != nil {
		return r.cfg.SizesVecAdd
	}
	step := 100_000
	if r.cfg.Full {
		step = 1_000_000
	}
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = (i + 1) * step
	}
	return sizes
}

// ReduceSizes returns the sweep sizes: the paper's n = 2^16 … 2^26 in Full
// mode, 2^16 … 2^22 otherwise.
func (r *Runner) ReduceSizes() []int {
	if r.cfg.SizesReduce != nil {
		return r.cfg.SizesReduce
	}
	hi := 22
	if r.cfg.Full {
		hi = 26
	}
	var sizes []int
	for e := 16; e <= hi; e++ {
		sizes = append(sizes, 1<<e)
	}
	return sizes
}

// MatMulSizes returns the sweep sizes: the paper's n = 32, 64, …, 1024
// doublings in Full mode, up to 256 otherwise.
func (r *Runner) MatMulSizes() []int {
	if r.cfg.SizesMatMul != nil {
		return r.cfg.SizesMatMul
	}
	hi := 256
	if r.cfg.Full {
		hi = 1024
	}
	var sizes []int
	for n := 32; n <= hi; n *= 2 {
		sizes = append(sizes, n)
	}
	return sizes
}

// RunVecAdd sweeps vector addition (paper §IV-A).
func (r *Runner) RunVecAdd() (*WorkloadData, error) {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	data := &WorkloadData{Workload: "vecadd"}
	for _, n := range r.VecAddSizes() {
		alg := algorithms.VecAdd{N: n}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return nil, fmt.Errorf("vecadd n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return nil, fmt.Errorf("vecadd n=%d: predict: %w", n, err)
		}
		pt.N = n

		h, err := r.newHost(alg.GlobalWords())
		if err != nil {
			return nil, err
		}
		a := randWords(rng, n)
		b := randWords(rng, n)
		if _, err := alg.Run(h, a, b); err != nil {
			return nil, fmt.Errorf("vecadd n=%d: run: %w", n, err)
		}
		pt.observe(h.Report())
		data.Points = append(data.Points, pt)
	}
	return data, nil
}

// RunReduce sweeps reduction (paper §IV-B).
func (r *Runner) RunReduce() (*WorkloadData, error) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 1))
	data := &WorkloadData{Workload: "reduce"}
	b := r.cfg.Device.WarpWidth
	for _, n := range r.ReduceSizes() {
		alg := algorithms.Reduce{N: n}

		// The perfect-GPU instance needs a multiprocessor per block of
		// the largest round.
		analysis, err := alg.Analyze(r.modelParams((n + b - 1) / b))
		if err != nil {
			return nil, fmt.Errorf("reduce n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return nil, fmt.Errorf("reduce n=%d: predict: %w", n, err)
		}
		pt.N = n

		h, err := r.newHost(alg.GlobalWords(b))
		if err != nil {
			return nil, err
		}
		in := randBits(rng, n)
		got, err := alg.Run(h, in)
		if err != nil {
			return nil, fmt.Errorf("reduce n=%d: run: %w", n, err)
		}
		if want := algorithms.ReduceReference(in); got != want {
			return nil, fmt.Errorf("reduce n=%d: %w: got %d want %d",
				n, algorithms.ErrVerifyFail, got, want)
		}
		pt.observe(h.Report())
		data.Points = append(data.Points, pt)
	}
	return data, nil
}

// RunMatMul sweeps matrix multiplication (paper §IV-C).
func (r *Runner) RunMatMul() (*WorkloadData, error) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 2))
	data := &WorkloadData{Workload: "matmul"}
	for _, n := range r.MatMulSizes() {
		alg := algorithms.MatMul{N: n}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return nil, fmt.Errorf("matmul n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return nil, fmt.Errorf("matmul n=%d: predict: %w", n, err)
		}
		pt.N = n

		h, err := r.newHost(alg.GlobalWords())
		if err != nil {
			return nil, err
		}
		a := randWords(rng, n*n)
		b := randWords(rng, n*n)
		if _, err := alg.Run(h, a, b); err != nil {
			return nil, fmt.Errorf("matmul n=%d: run: %w", n, err)
		}
		pt.observe(h.Report())
		data.Points = append(data.Points, pt)
	}
	return data, nil
}

// predict fills the model-side fields of a point from an analysis.
func (r *Runner) predict(a *core.Analysis) (WorkloadPoint, error) {
	var pt WorkloadPoint
	bd, err := core.GPUCostBreakdown(a, r.params)
	if err != nil {
		return pt, err
	}
	pt.ATGPUCost = bd.Total()
	pt.DeltaPredicted = bd.TransferFraction()
	sw, err := models.SWGPUCost(a, r.params)
	if err != nil {
		return pt, err
	}
	pt.SWGPUCost = sw
	return pt, nil
}

// observe fills the simulator-side fields from a host report.
func (pt *WorkloadPoint) observe(rep simgpu.RunReport) {
	pt.TotalTime = rep.Total.Seconds()
	pt.KernelTime = rep.Kernel.Seconds()
	pt.TransferTime = rep.Transfer.Seconds()
	pt.SyncTime = rep.Sync.Seconds()
	pt.DeltaObserved = rep.TransferFraction()
}
