package experiments

import (
	"fmt"
	"math/rand"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
)

// Fixed shape parameters of the atomic-workload sweeps. They are part of
// each sweep's identity (the cache key hashes the kernel they produce), so
// changing them is a results-format change.
const (
	// HistogramSweepBins is the bucket count of the histogram sweeps.
	HistogramSweepBins = 32
	// TopKSweepK is the slot count of the top-k sweep.
	TopKSweepK = 8
	// MonteCarloTrials is the per-thread draw count of the Monte Carlo
	// sweep.
	MonteCarloTrials = 64
)

// HistogramSizes returns the effective histogram sweep sizes.
func (r *Runner) HistogramSizes() []int { return r.cfg.mustSweepSizes("histogram") }

// CompactSizes returns the effective compaction sweep sizes.
func (r *Runner) CompactSizes() []int { return r.cfg.mustSweepSizes("compact") }

// TopKSizes returns the effective top-k sweep sizes.
func (r *Runner) TopKSizes() []int { return r.cfg.mustSweepSizes("topk") }

// MonteCarloSizes returns the effective Monte Carlo sweep sizes.
func (r *Runner) MonteCarloSizes() []int { return r.cfg.mustSweepSizes("montecarlo") }

// randNonNeg draws n words uniformly from [0, 2000], the histogram input
// domain (bins index by value mod Bins, so values must be non-negative).
func randNonNeg(rng *rand.Rand, n int) []mem.Word {
	w := make([]mem.Word, n)
	for i := range w {
		w[i] = mem.Word(rng.Intn(2001))
	}
	return w
}

// RunHistogram sweeps the contended histogram (privatized=false selects the
// shared-counter kernel whose atomic serialisation the contention model
// prices; see RunHistogramContention for the predicted-versus-observed
// factor study).
func (r *Runner) RunHistogram(privatized bool) (*WorkloadData, error) {
	name := "histogram"
	if privatized {
		name = "histogram-priv"
	}
	return r.runSweep(name, r.HistogramSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.Histogram{N: n, Bins: HistogramSweepBins, Privatized: privatized}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("%s n=%d: analyze: %w", name, n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("%s n=%d: predict: %w", name, n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), name, n, idx)
			if err != nil {
				return nil, err
			}
			in := randNonNeg(r.inputRNG(name, n, idx), n)
			got, err := alg.Run(h, in)
			if err != nil {
				return h, fmt.Errorf("%s n=%d: run: %w", name, n, err)
			}
			want, err := algorithms.HistogramReference(in, HistogramSweepBins)
			if err != nil {
				return h, err
			}
			for i := range want {
				if got[i] != want[i] {
					return h, fmt.Errorf("%s n=%d: %w: bin %d got %d want %d",
						name, n, algorithms.ErrVerifyFail, i, got[i], want[i])
				}
			}
			return h, nil
		})
		return pt, err
	})
}

// RunCompact sweeps stream compaction. The survivor order is
// schedule-dependent, so verification compares sorted multisets.
func (r *Runner) RunCompact() (*WorkloadData, error) {
	return r.runSweep("compact", r.CompactSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.Compact{N: n}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("compact n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("compact n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), "compact", n, idx)
			if err != nil {
				return nil, err
			}
			// Roughly half the elements survive: draw from [-1000,1000] and
			// zero every third, as the smoke tests do.
			in := randWords(r.inputRNG("compact", n, idx), n)
			for i := 0; i < n; i += 3 {
				in[i] = 0
			}
			got, err := alg.Run(h, in)
			if err != nil {
				return h, fmt.Errorf("compact n=%d: run: %w", n, err)
			}
			want := algorithms.CompactReference(in)
			if !equalMultiset(got, want) {
				return h, fmt.Errorf("compact n=%d: %w: %d survivors, want %d",
					n, algorithms.ErrVerifyFail, len(got), len(want))
			}
			return h, nil
		})
		return pt, err
	})
}

// RunTopK sweeps the atomic-max top-k cascade.
func (r *Runner) RunTopK() (*WorkloadData, error) {
	return r.runSweep("topk", r.TopKSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.TopK{N: n, K: TopKSweepK}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("topk n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("topk n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), "topk", n, idx)
			if err != nil {
				return nil, err
			}
			in := randWords(r.inputRNG("topk", n, idx), n)
			got, err := alg.Run(h, in)
			if err != nil {
				return h, fmt.Errorf("topk n=%d: run: %w", n, err)
			}
			want, err := algorithms.TopKReference(in, TopKSweepK)
			if err != nil {
				return h, err
			}
			if !equalMultiset(got, want) {
				return h, fmt.Errorf("topk n=%d: %w: slots %v want %v",
					n, algorithms.ErrVerifyFail, got, want)
			}
			return h, nil
		})
		return pt, err
	})
}

// RunMonteCarlo sweeps the warp-replicated Monte Carlo estimator over
// thread counts; each thread runs MonteCarloTrials draws.
func (r *Runner) RunMonteCarlo() (*WorkloadData, error) {
	return r.runSweep("montecarlo", r.MonteCarloSizes(), func(idx, n int) (WorkloadPoint, error) {
		alg := algorithms.MonteCarlo{N: n, Trials: MonteCarloTrials}

		analysis, err := alg.Analyze(r.modelParams(alg.Blocks(r.cfg.Device.WarpWidth)))
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("montecarlo n=%d: analyze: %w", n, err)
		}
		pt, err := r.predict(analysis)
		if err != nil {
			return WorkloadPoint{}, fmt.Errorf("montecarlo n=%d: predict: %w", n, err)
		}
		pt.N = n

		err = r.observePoint(&pt, func() (*simgpu.Host, error) {
			h, err := r.newHost(alg.GlobalWords(), "montecarlo", n, idx)
			if err != nil {
				return nil, err
			}
			got, err := alg.Run(h)
			if err != nil {
				return h, fmt.Errorf("montecarlo n=%d: run: %w", n, err)
			}
			want, err := alg.MonteCarloReference()
			if err != nil {
				return h, err
			}
			if got != want {
				return h, fmt.Errorf("montecarlo n=%d: %w: hits %d want %d",
					n, algorithms.ErrVerifyFail, got, want)
			}
			return h, nil
		})
		return pt, err
	})
}

// equalMultiset compares two word slices as multisets.
func equalMultiset(a, b []mem.Word) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[mem.Word]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		if counts[v] == 0 {
			return false
		}
		counts[v]--
	}
	return true
}

// ContentionPoint is one skew level's predicted-versus-observed contention
// outcome for the histogram study.
type ContentionPoint struct {
	// Skew is the fraction of inputs forced into bin 0; the rest are
	// uniform over the bins. 1 is the analyzer's worst case realised.
	Skew float64 `json:"skew"`
	// PredictedFactor is the static contention factor 1 + Ser/Acc from
	// the analyzer's counters — input-agnostic, so constant across skews:
	// the model's upper bound.
	PredictedFactor float64 `json:"predicted_factor"`
	// ObservedFactor is the simulator's 1 + Ser/Acc for the same launch.
	ObservedFactor float64 `json:"observed_factor"`
	// PredictedSeconds is the static contended-cost estimate
	// (CostEstimate.ContendedSeconds) for the launch.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// ObservedKernelSeconds is the simulated kernel time.
	ObservedKernelSeconds float64 `json:"observed_kernel_seconds"`
	// StaticSerialisations and ObservedSerialisations expose the raw
	// counters behind the factors.
	StaticSerialisations   int64 `json:"static_serialisations"`
	ObservedSerialisations int64 `json:"observed_serialisations"`
	// StaticAccesses and ObservedAccesses likewise.
	StaticAccesses   int64 `json:"static_accesses"`
	ObservedAccesses int64 `json:"observed_accesses"`
	// Precise is the analyzer's exactness flag for the launch.
	Precise bool `json:"precise"`
}

// ContentionStudy is the histogram contention experiment: the same launch
// analysed statically once and simulated across input skews, exposing how
// the observed contention factor approaches the static upper bound as the
// input concentrates onto one bin.
type ContentionStudy struct {
	Workload string            `json:"workload"`
	N        int               `json:"n"`
	Bins     int               `json:"bins"`
	Points   []ContentionPoint `json:"points"`
}

// RunHistogramContention runs the contended-histogram contention study: one
// static analysis of the exact launched kernel, then one simulation per
// skew level. At skew 1 every lane of a full warp hits one bin, the
// analyzer's pessimistic degree is realised, and predicted and observed
// factors must agree (the differential tests hold them within 10%).
func (r *Runner) RunHistogramContention(n int, skews []float64) (*ContentionStudy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: contention study: non-positive n %d", n)
	}
	if len(skews) == 0 {
		skews = []float64{0, 0.5, 0.9, 1}
	}
	alg := algorithms.Histogram{N: n, Bins: HistogramSweepBins}
	study := &ContentionStudy{Workload: alg.Name(), N: n, Bins: HistogramSweepBins}

	for idx, skew := range skews {
		if skew < 0 || skew > 1 {
			return nil, fmt.Errorf("experiments: contention study: skew %v outside [0,1]", skew)
		}
		h, err := r.newHost(alg.GlobalWords(), "histogram-contention", n, idx)
		if err != nil {
			return nil, err
		}
		// Allocate exactly as Histogram.Run does, but build and analyse the
		// kernel here so the static report describes the exact program the
		// device executes, base addresses included.
		baseIn, err := h.Malloc(n)
		if err != nil {
			return nil, err
		}
		baseOut, err := h.Malloc(HistogramSweepBins)
		if err != nil {
			return nil, err
		}
		width := h.Device().Config().WarpWidth
		prog, err := alg.Kernel(width, baseIn, baseOut)
		if err != nil {
			return nil, err
		}

		cp := r.params
		rep, err := analyze.Program(prog, analyze.Options{
			Machine: analyze.FromConfig(h.Device().Config()),
			Blocks:  alg.Blocks(width),
			Cost:    &cp,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: contention study: analyze: %w", err)
		}

		rng := r.inputRNG("histogram-contention", n, idx)
		in := make([]mem.Word, n)
		for i := range in {
			if rng.Float64() < skew {
				in[i] = 0 // bin 0
			} else {
				in[i] = mem.Word(rng.Intn(HistogramSweepBins))
			}
		}
		if err := h.TransferIn(baseIn, in); err != nil {
			return nil, err
		}
		if err := h.TransferIn(baseOut, make([]mem.Word, HistogramSweepBins)); err != nil {
			return nil, err
		}
		if _, err := h.Launch(prog, alg.Blocks(width)); err != nil {
			return nil, fmt.Errorf("experiments: contention study skew=%v: %w", skew, err)
		}
		got, err := h.TransferOut(baseOut, HistogramSweepBins)
		if err != nil {
			return nil, err
		}
		h.EndRound()
		want, err := algorithms.HistogramReference(in, HistogramSweepBins)
		if err != nil {
			return nil, err
		}
		for i := range want {
			if got[i] != want[i] {
				return nil, fmt.Errorf("experiments: contention study skew=%v: %w: bin %d got %d want %d",
					skew, algorithms.ErrVerifyFail, i, got[i], want[i])
			}
		}

		st := h.KernelStats()
		pt := ContentionPoint{
			Skew:                   skew,
			StaticSerialisations:   rep.Stats.AtomicSerialisations,
			ObservedSerialisations: st.AtomicSerialisations,
			StaticAccesses:         rep.Stats.AtomicAccesses,
			ObservedAccesses:       st.AtomicAccesses,
			ObservedKernelSeconds:  h.KernelTime().Seconds(),
			Precise:                rep.Precise,
		}
		if rep.Cost != nil {
			pt.PredictedFactor = rep.Cost.ContentionFactor
			pt.PredictedSeconds = rep.Cost.ContendedSeconds
		}
		if st.AtomicAccesses > 0 {
			pt.ObservedFactor = 1 + float64(st.AtomicSerialisations)/float64(st.AtomicAccesses)
		}
		study.Points = append(study.Points, pt)
	}
	return study, nil
}
