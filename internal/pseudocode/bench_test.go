package pseudocode

import "testing"

// BenchmarkParse measures front-end speed on the vecadd kernel source.
func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(vecAddKernelSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures parse+compile end to end.
func BenchmarkCompile(b *testing.B) {
	params := map[string]int64{"n": 1 << 20, "baseA": 0, "baseB": 1 << 20, "baseC": 1 << 21}
	for i := 0; i < b.N; i++ {
		if _, err := CompileSource(vecAddKernelSrc, 32, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParsePlan measures the plan front end.
func BenchmarkParsePlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParsePlan(vecAddPlanSrc); err != nil {
			b.Fatal(err)
		}
	}
}
