package pseudocode

import (
	"bytes"
	"strings"
	"testing"

	"atgpu/internal/analyze"
)

// fuzzMachine is the abstract machine every compiling fuzz input is
// analysed against: width matches the Compile width, memories are small so
// bounds findings trigger easily, and the fuel/loop budgets are tight so
// adversarial loops abort quickly instead of stalling the fuzzer.
func fuzzMachine() analyze.Options {
	return analyze.Options{
		Machine: analyze.Machine{
			Width:                4,
			SharedWords:          64,
			GlobalWords:          256,
			NumSMs:               2,
			MaxBlocksPerSM:       4,
			BroadcastSharedReads: true,
		},
		Blocks:     2,
		Fuel:       1 << 16,
		LoopBudget: 64,
	}
}

// FuzzParse exercises the kernel parser: it must never panic and, when it
// accepts an input, compilation with generic bindings must either succeed
// (producing a valid program) or fail with a typed error. Every program
// that compiles is then statically analysed — the analyzer must not panic
// and must return the identical report when run again (verdicts are pure
// functions of the program).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"kernel k()\nbarrier\n",
		vecAddKernelSrc,
		"kernel k(n)\nshared _s[b]\nif core < n\n_s[core] <== global[core]\nend\n",
		"kernel k()\nfor i = 0 to 4\nx = i * 2\nend\nglobal[core] = x\n",
		"kernel k()\nx = min(core, 3) + max(mp, 1)\n",
		"kernel bad(\n",
		"kernel k()\nx = (1 + \n",
		"kernel k()\nfor i = 10 downto 0 step 2\nend\n",
		"plan p()\n", // wrong entry point
		"# only a comment\n",
		"kernel k()\nx = 1 << 3 >> 1 & 7 | 2 ^ 1\n",
		"kernel k()\nshared _s[b]\natomadd(_s[core], 1)\n",
		"kernel k(n)\nshared _h[8]\natomadd(_h[core % n], 1)\nbarrier\natomadd(global[core], _h[core])\n",
		"kernel k()\nshared _s[b]\nx = atomexch(_s[0], core)\nglobal[core] = x\n",
		"kernel k()\nshared _s[b]\nold = atomcas(_s[0], 0, core + 1)\n",
		"kernel k()\natommax(global[0], core * core)\n",
		"kernel k()\natomadd(x, 1)\n",         // bad target
		"kernel k()\natomcas(global[0], 1)\n", // missing operand
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		k, err := Parse(src)
		if err != nil {
			return
		}
		params := map[string]int64{}
		for _, p := range k.Params {
			params[p] = 4
		}
		prog, err := Compile(k, 4, params)
		if err != nil {
			return
		}
		if vErr := prog.Validate(); vErr != nil {
			t.Fatalf("compiled program invalid: %v\nsource:\n%s", vErr, src)
		}
		rep, aErr := analyze.Program(prog, fuzzMachine())
		if aErr != nil {
			// Only option validation can fail, and ours are fixed.
			t.Fatalf("analyze rejected options: %v\nsource:\n%s", aErr, src)
		}
		again, _ := analyze.Program(prog, fuzzMachine())
		rj, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		aj, err := again.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rj, aj) {
			t.Fatalf("analysis verdict not deterministic:\n%s\n---\n%s\nsource:\n%s", rj, aj, src)
		}
	})
}

// FuzzParsePlan exercises the plan parser.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		vecAddPlanSrc,
		"plan p()\nsync\n",
		"plan p(n)\ndev a[n]\na W A\nA W a\n",
		"plan p()\nlaunch k(x = 1) blocks 2\n",
		"plan p()\ndev a[4\n",
		"plan p()\nA W B\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pl, err := ParsePlan(src)
		if err != nil {
			return
		}
		// Accepted plans must round-trip basic invariants.
		if pl.Name == "" {
			t.Fatalf("accepted plan with empty name: %q", src)
		}
		for _, st := range pl.Stmts {
			if tr, ok := st.(*TransferStmt); ok {
				if isHostName(tr.Device) || !isHostName(tr.Host) {
					t.Fatalf("transfer scopes inverted: %+v", tr)
				}
			}
		}
	})
}

// FuzzLexer feeds arbitrary bytes to the lexer, which must terminate and
// never produce a token stream missing its EOF.
func FuzzLexer(f *testing.F) {
	f.Add("x <== <= << < y")
	f.Add("== = != ! # comment")
	f.Add("0x10 099 9e9")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := newLexer(src).lex()
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream not EOF-terminated")
		}
		if strings.Contains(src, "\n") && len(toks) < 2 {
			t.Fatal("newline input produced too few tokens")
		}
	})
}
