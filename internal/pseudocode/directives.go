package pseudocode

import (
	"fmt"
	"strconv"
	"strings"
)

// Directives extracts `#! lint:` launch directives from a pseudocode
// source. A directive line looks like
//
//	#! lint: blocks=4 width=8 n=32 inBase=0
//
// and binds integer keys; to the lexer it is an ordinary comment, so
// annotated sources parse and compile unchanged. The conventional keys
// "blocks" and "width" describe the launch shape; every other key is a
// kernel parameter binding. Later directives override earlier ones key by
// key. Returns nil when the source carries no directive lines.
func Directives(src string) (map[string]int64, error) {
	var out map[string]int64
	for i, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "#!") {
			continue
		}
		t = strings.TrimSpace(strings.TrimPrefix(t, "#!"))
		if !strings.HasPrefix(t, "lint:") {
			continue
		}
		t = strings.TrimSpace(strings.TrimPrefix(t, "lint:"))
		for _, field := range strings.Fields(t) {
			k, v, ok := strings.Cut(field, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("pseudocode: line %d: bad directive field %q (want key=value)", i+1, field)
			}
			n, err := strconv.ParseInt(v, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("pseudocode: line %d: bad directive value %q: %v", i+1, field, err)
			}
			if out == nil {
				out = make(map[string]int64)
			}
			out[k] = n
		}
	}
	return out, nil
}
