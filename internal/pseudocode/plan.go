package pseudocode

import (
	"fmt"
	"strings"

	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
)

// Plan is the host side of the paper's pseudocode: the wrapper that
// allocates device arrays, moves data with the W operator, launches
// kernels and synchronises — the round structure of Section II. Variable
// scope follows the paper's naming convention: "Host variables ... their
// names begin with capital letter. Global variables ... begin with lower
// case letter."
//
// Grammar (line-oriented, '#' comments):
//
//	plan NAME(param, ...)
//	dev name[expr]                         device global allocation
//	name W Name                            inward transfer (device ← host)
//	Name W name                            outward transfer (host ← device)
//	launch kernelname(arg = expr, ...) blocks expr
//	sync                                   end of round (charges σ)
//
// Plan-level expressions use the same syntax as kernel expressions but
// evaluate at plan execution time over: bound parameters, device array
// base addresses (the array name), array sizes (`len name` is not needed —
// sizes are params in practice), and the device builtin b.
type Plan struct {
	Name   string
	Params []string
	Stmts  []PlanStmt
}

// PlanStmt is a host-side statement.
type PlanStmt interface{ planStmtNode() }

// DevDecl allocates a device array.
type DevDecl struct {
	Name string
	Size Expr
	Line int
}

// TransferStmt is the W operator. In is true for host→device (the
// destination is a device array), false for device→host.
type TransferStmt struct {
	In bool
	// Device is the device array name; Host the host buffer name.
	Device string
	Host   string
	Line   int
}

// LaunchStmt runs a kernel.
type LaunchStmt struct {
	Kernel string
	Args   []LaunchArg
	Blocks Expr
	Line   int
}

// LaunchArg binds one kernel parameter.
type LaunchArg struct {
	Name string
	Val  Expr
}

// SyncStmt ends a round.
type SyncStmt struct{ Line int }

func (*DevDecl) planStmtNode()      {}
func (*TransferStmt) planStmtNode() {}
func (*LaunchStmt) planStmtNode()   {}
func (*SyncStmt) planStmtNode()     {}

// isHostName reports whether a name follows the paper's host (capitalised)
// convention.
func isHostName(s string) bool { return len(s) > 0 && s[0] >= 'A' && s[0] <= 'Z' }

// ParsePlan parses a plan definition.
func ParsePlan(src string) (*Plan, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parsePlan()
}

func (p *parser) parsePlan() (*Plan, error) {
	p.skipNewlines()
	kw, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if kw.text != "plan" {
		return nil, p.errorf(kw, "expected 'plan', got %q", kw.text)
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	pl := &Plan{Name: name.text}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.cur().kind != tokRParen {
		for {
			pn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			pl.Params = append(pl.Params, pn.text)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}

	for {
		p.skipNewlines()
		if p.cur().kind == tokEOF {
			return pl, nil
		}
		st, err := p.parsePlanStmt()
		if err != nil {
			return nil, err
		}
		pl.Stmts = append(pl.Stmts, st)
	}
}

func (p *parser) parsePlanStmt() (PlanStmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errorf(t, "expected plan statement, got %s", t)
	}
	switch t.text {
	case "sync":
		p.next()
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &SyncStmt{Line: t.line}, nil

	case "dev":
		p.next()
		n, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if isHostName(n.text) || strings.HasPrefix(n.text, "_") {
			return nil, p.errorf(n, "device array %q must begin with a lower-case letter (paper convention)", n.text)
		}
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &DevDecl{Name: n.text, Size: size, Line: t.line}, nil

	case "launch":
		p.next()
		kn, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		st := &LaunchStmt{Kernel: kn.text, Line: t.line}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			for {
				an, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokAssign); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, LaunchArg{Name: an.text, Val: val})
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		bk, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if bk.text != "blocks" {
			return nil, p.errorf(bk, "expected 'blocks', got %q", bk.text)
		}
		blocks, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		st.Blocks = blocks
		return st, nil
	}

	// Transfer: `x W Y` or `X W y`.
	first := p.next()
	w, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if w.text != "W" {
		return nil, p.errorf(w, "expected the W transfer operator, got %q", w.text)
	}
	second, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}
	switch {
	case !isHostName(first.text) && isHostName(second.text):
		return &TransferStmt{In: true, Device: first.text, Host: second.text, Line: t.line}, nil
	case isHostName(first.text) && !isHostName(second.text):
		return &TransferStmt{In: false, Host: first.text, Device: second.text, Line: t.line}, nil
	default:
		return nil, p.errorf(t, "W must pair one host (capitalised) and one device (lower-case) name: %q W %q", first.text, second.text)
	}
}

// PlanEnv supplies everything a plan needs at execution time.
type PlanEnv struct {
	// Host executes transfers and launches on its simulated timeline.
	Host *simgpu.Host
	// Kernels maps kernel names referenced by launch statements to their
	// parsed definitions.
	Kernels map[string]*Kernel
	// Params binds the plan's parameters.
	Params map[string]int64
	// In supplies host buffers for inward transfers by name.
	In map[string][]mem.Word
}

// PlanResult carries outward-transferred host buffers by name.
type PlanResult struct {
	Out map[string][]mem.Word
}

// Run executes the plan: allocations, W transfers, launches and syncs, in
// order, against env.Host. Kernels are compiled on first use with the
// plan's parameter bindings resolved per launch.
func (pl *Plan) Run(env PlanEnv) (*PlanResult, error) {
	if env.Host == nil {
		return nil, fmt.Errorf("%w: plan %s: nil host", ErrCompile, pl.Name)
	}
	for _, p := range pl.Params {
		if _, ok := env.Params[p]; !ok {
			return nil, fmt.Errorf("%w: plan %s: parameter %q not bound", ErrCompile, pl.Name, p)
		}
	}
	width := env.Host.Device().Config().WarpWidth

	arrays := make(map[string]struct{ base, size int })
	resolve := func(name string) (int64, bool) {
		if name == "b" {
			return int64(width), true
		}
		if v, ok := env.Params[name]; ok {
			return v, true
		}
		if a, ok := arrays[name]; ok {
			return int64(a.base), true
		}
		return 0, false
	}
	res := &PlanResult{Out: make(map[string][]mem.Word)}

	for _, st := range pl.Stmts {
		switch st := st.(type) {
		case *DevDecl:
			if _, dup := arrays[st.Name]; dup {
				return nil, fmt.Errorf("%w: plan %s line %d: array %q redeclared", ErrCompile, pl.Name, st.Line, st.Name)
			}
			size, err := evalPlanExpr(st.Size, resolve)
			if err != nil {
				return nil, fmt.Errorf("%w: plan %s line %d: %v", ErrCompile, pl.Name, st.Line, err)
			}
			if size <= 0 {
				return nil, fmt.Errorf("%w: plan %s line %d: array %q size %d", ErrCompile, pl.Name, st.Line, st.Name, size)
			}
			base, err := env.Host.Malloc(int(size))
			if err != nil {
				return nil, fmt.Errorf("plan %s line %d: %w", pl.Name, st.Line, err)
			}
			arrays[st.Name] = struct{ base, size int }{base, int(size)}

		case *TransferStmt:
			arr, ok := arrays[st.Device]
			if !ok {
				return nil, fmt.Errorf("%w: plan %s line %d: unknown device array %q", ErrCompile, pl.Name, st.Line, st.Device)
			}
			if st.In {
				buf, ok := env.In[st.Host]
				if !ok {
					return nil, fmt.Errorf("%w: plan %s line %d: no host buffer %q", ErrCompile, pl.Name, st.Line, st.Host)
				}
				if len(buf) > arr.size {
					return nil, fmt.Errorf("%w: plan %s line %d: buffer %q (%d words) exceeds array %q (%d)",
						ErrCompile, pl.Name, st.Line, st.Host, len(buf), st.Device, arr.size)
				}
				if err := env.Host.TransferIn(arr.base, buf); err != nil {
					return nil, fmt.Errorf("plan %s line %d: %w", pl.Name, st.Line, err)
				}
			} else {
				out, err := env.Host.TransferOut(arr.base, arr.size)
				if err != nil {
					return nil, fmt.Errorf("plan %s line %d: %w", pl.Name, st.Line, err)
				}
				res.Out[st.Host] = out
			}

		case *LaunchStmt:
			k, ok := env.Kernels[st.Kernel]
			if !ok {
				return nil, fmt.Errorf("%w: plan %s line %d: unknown kernel %q", ErrCompile, pl.Name, st.Line, st.Kernel)
			}
			bindings := make(map[string]int64, len(st.Args))
			for _, a := range st.Args {
				v, err := evalPlanExpr(a.Val, resolve)
				if err != nil {
					return nil, fmt.Errorf("%w: plan %s line %d: arg %s: %v", ErrCompile, pl.Name, st.Line, a.Name, err)
				}
				bindings[a.Name] = v
			}
			prog, err := Compile(k, width, bindings)
			if err != nil {
				return nil, fmt.Errorf("plan %s line %d: %w", pl.Name, st.Line, err)
			}
			blocks, err := evalPlanExpr(st.Blocks, resolve)
			if err != nil {
				return nil, fmt.Errorf("%w: plan %s line %d: blocks: %v", ErrCompile, pl.Name, st.Line, err)
			}
			if _, err := env.Host.Launch(prog, int(blocks)); err != nil {
				return nil, fmt.Errorf("plan %s line %d: %w", pl.Name, st.Line, err)
			}

		case *SyncStmt:
			env.Host.EndRound()
		}
	}
	return res, nil
}

// evalPlanExpr folds a plan-level expression via the resolver. Shared and
// global indexing are kernel-only and rejected here.
func evalPlanExpr(e Expr, resolve func(string) (int64, bool)) (int64, error) {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val, nil
	case *IdentExpr:
		if v, ok := resolve(e.Name); ok {
			return v, nil
		}
		return 0, fmt.Errorf("undefined name %q", e.Name)
	case *BinExpr:
		l, err := evalPlanExpr(e.L, resolve)
		if err != nil {
			return 0, err
		}
		r, err := evalPlanExpr(e.R, resolve)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case tokPlus:
			return l + r, nil
		case tokMinus:
			return l - r, nil
		case tokStar:
			return l * r, nil
		case tokSlash:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case tokPercent:
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return l % r, nil
		case tokShl:
			return l << uint(r&63), nil
		case tokShr:
			return l >> uint(r&63), nil
		case tokLt:
			return b2i(l < r), nil
		case tokLe:
			return b2i(l <= r), nil
		case tokGt:
			return b2i(l > r), nil
		case tokGe:
			return b2i(l >= r), nil
		case tokEq:
			return b2i(l == r), nil
		case tokNe:
			return b2i(l != r), nil
		case tokAmp:
			return l & r, nil
		case tokPipe:
			return l | r, nil
		case tokCaret:
			return l ^ r, nil
		}
		return 0, fmt.Errorf("unsupported plan operator %s", e.Op)
	case *CallExpr:
		if len(e.Args) != 2 {
			return 0, fmt.Errorf("%s expects 2 arguments", e.Fn)
		}
		l, err := evalPlanExpr(e.Args[0], resolve)
		if err != nil {
			return 0, err
		}
		r, err := evalPlanExpr(e.Args[1], resolve)
		if err != nil {
			return 0, err
		}
		if e.Fn == "min" {
			if l < r {
				return l, nil
			}
			return r, nil
		}
		if l > r {
			return l, nil
		}
		return r, nil
	case *SharedIndexExpr, *GlobalIndexExpr:
		return 0, fmt.Errorf("memory indexing is kernel-only, not allowed in plans")
	}
	return 0, fmt.Errorf("unhandled plan expression %T", e)
}
