package pseudocode

import (
	"fmt"

	"atgpu/internal/kernel"
)

// Compile binds the kernel's parameters to concrete values and lowers the
// AST to a kernel.Program for the simulated device. Parameters are
// compile-time constants, matching how the paper's pseudocode instantiates
// a kernel for a particular problem size and memory layout. warpWidth is
// the machine's b — a fixed property of the model instance ATGPU(p,b,M,G),
// so the builtin `b` folds as a constant (shared array sizes like `_a[3*b]`
// depend on it).
func Compile(k *Kernel, warpWidth int, params map[string]int64) (*kernel.Program, error) {
	if warpWidth <= 0 {
		return nil, fmt.Errorf("%w: warp width %d", ErrCompile, warpWidth)
	}
	c := &compiler{
		k:         k,
		warpWidth: int64(warpWidth),
		params:    params,
		vars:      make(map[string]kernel.Reg),
		sharedB:   make(map[string]int64),
	}
	return c.compile()
}

// MustCompile is Compile that panics on error, for static kernels.
func MustCompile(k *Kernel, warpWidth int, params map[string]int64) *kernel.Program {
	p, err := Compile(k, warpWidth, params)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileSource parses and compiles in one step.
func CompileSource(src string, warpWidth int, params map[string]int64) (*kernel.Program, error) {
	k, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(k, warpWidth, params)
}

type compiler struct {
	k         *Kernel
	warpWidth int64
	params    map[string]int64
	b         *kernel.Builder

	vars    map[string]kernel.Reg // named variables (and loop counters)
	sharedB map[string]int64      // shared array name → base offset

	// Builtin registers, materialised in the prologue when used. The
	// builtin `b` needs none: it folds to the compile-time warp width.
	mpReg, coreReg, nbReg    kernel.Reg
	mpUsed, coreUsed, nbUsed bool

	// temps is the per-statement scratch pool: registers here are dead at
	// each statement boundary and may be rewritten by re-executed code,
	// which is safe because every temp is written before read within its
	// statement.
	temps    []kernel.Reg
	tempNext int
}

func (c *compiler) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("%w: kernel %s line %d: %s", ErrCompile, c.k.Name, line, fmt.Sprintf(format, args...))
}

// compile drives the lowering.
func (c *compiler) compile() (*kernel.Program, error) {
	// Check parameter bindings. These errors concern the kernel header, so
	// they carry its line rather than a meaningless 0.
	for _, p := range c.k.Params {
		if _, ok := c.params[p]; !ok {
			return nil, c.errorf(c.k.Line, "parameter %q not bound", p)
		}
	}
	for name := range c.params {
		found := false
		for _, p := range c.k.Params {
			if p == name {
				found = true
				break
			}
		}
		if !found {
			return nil, c.errorf(c.k.Line, "binding for unknown parameter %q", name)
		}
	}

	// Lay out shared arrays; sizes must be compile-time constants.
	sharedTotal := int64(0)
	for _, d := range c.k.Shared {
		if _, dup := c.sharedB[d.Name]; dup {
			return nil, c.errorf(d.Line, "shared %q redeclared", d.Name)
		}
		size, ok := c.evalConst(d.Size)
		if !ok {
			return nil, c.errorf(d.Line, "shared %q size is not a compile-time constant", d.Name)
		}
		if size <= 0 {
			return nil, c.errorf(d.Line, "shared %q size %d must be positive", d.Name, size)
		}
		c.sharedB[d.Name] = sharedTotal
		sharedTotal += size
	}

	c.b = kernel.NewBuilder(c.k.Name, int(sharedTotal))

	// Prologue: materialise used builtins once.
	c.scanBuiltins(c.k.Body)
	if c.mpUsed {
		c.mpReg = c.b.Reg("mp")
		c.b.BlockID(c.mpReg)
	}
	if c.coreUsed {
		c.coreReg = c.b.Reg("core")
		c.b.LaneID(c.coreReg)
	}
	if c.nbUsed {
		c.nbReg = c.b.Reg("nblocks")
		c.b.NumBlocks(c.nbReg)
	}

	if err := c.compileBlock(c.k.Body); err != nil {
		return nil, err
	}
	return c.b.Build()
}

// scanBuiltins walks the AST marking which builtins appear.
func (c *compiler) scanBuiltins(stmts []Stmt) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *IdentExpr:
			switch e.Name {
			case "mp":
				c.mpUsed = true
			case "core":
				c.coreUsed = true
			case "nblocks":
				c.nbUsed = true
			}
		case *SharedIndexExpr:
			walkExpr(e.Index)
		case *GlobalIndexExpr:
			walkExpr(e.Index)
		case *BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *AtomicCall:
			walkExpr(e.Target)
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch s := s.(type) {
		case *AssignStmt:
			walkExpr(s.Expr)
		case *VarStmt:
			if s.Expr != nil {
				walkExpr(s.Expr)
			}
		case *SharedStoreStmt:
			walkExpr(s.Index)
			walkExpr(s.Expr)
		case *GlobalStoreStmt:
			walkExpr(s.Index)
			walkExpr(s.Expr)
		case *IfStmt:
			walkExpr(s.Cond)
			for _, t := range s.Body {
				walkStmt(t)
			}
		case *ForStmt:
			walkExpr(s.Start)
			walkExpr(s.Limit)
			for _, t := range s.Body {
				walkStmt(t)
			}
		case *AtomicCall:
			walkExpr(s)
		}
	}
	for _, s := range stmts {
		walkStmt(s)
	}
}

// evalConst folds an expression over literals and bound parameters.
func (c *compiler) evalConst(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val, true
	case *IdentExpr:
		if e.Name == "b" {
			return c.warpWidth, true
		}
		v, ok := c.params[e.Name]
		return v, ok
	case *BinExpr:
		l, ok := c.evalConst(e.L)
		if !ok {
			return 0, false
		}
		r, ok := c.evalConst(e.R)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case tokPlus:
			return l + r, true
		case tokMinus:
			return l - r, true
		case tokStar:
			return l * r, true
		case tokSlash:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case tokPercent:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case tokShl:
			return l << uint(r&63), true
		case tokShr:
			return l >> uint(r&63), true
		case tokAmp:
			return l & r, true
		case tokPipe:
			return l | r, true
		case tokCaret:
			return l ^ r, true
		case tokLt:
			return b2i(l < r), true
		case tokLe:
			return b2i(l <= r), true
		case tokGt:
			return b2i(l > r), true
		case tokGe:
			return b2i(l >= r), true
		case tokEq:
			return b2i(l == r), true
		case tokNe:
			return b2i(l != r), true
		}
		return 0, false
	case *CallExpr:
		if len(e.Args) != 2 {
			return 0, false
		}
		l, ok := c.evalConst(e.Args[0])
		if !ok {
			return 0, false
		}
		r, ok := c.evalConst(e.Args[1])
		if !ok {
			return 0, false
		}
		if e.Fn == "min" {
			if l < r {
				return l, true
			}
			return r, true
		}
		if l > r {
			return l, true
		}
		return r, true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- statement lowering -------------------------------------------------------

func (c *compiler) compileBlock(stmts []Stmt) error {
	for _, s := range stmts {
		c.resetTemps()
		c.b.SetLine(StmtLine(s))
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(s Stmt) error {
	switch s := s.(type) {
	case *VarStmt:
		if _, dup := c.vars[s.Name]; dup {
			return c.errorf(s.Line, "variable %q redeclared", s.Name)
		}
		if _, isParam := c.params[s.Name]; isParam {
			return c.errorf(s.Line, "variable %q shadows a parameter", s.Name)
		}
		r := c.b.Reg(s.Name)
		c.vars[s.Name] = r
		if s.Expr != nil {
			return c.compileExprInto(r, s.Expr)
		}
		c.b.Const(r, 0)
		return nil

	case *AssignStmt:
		r, ok := c.vars[s.Name]
		if !ok {
			// Implicit declaration on first assignment keeps small
			// kernels terse while `var` remains available for clarity.
			if _, isParam := c.params[s.Name]; isParam {
				return c.errorf(s.Line, "cannot assign to parameter %q", s.Name)
			}
			if isKeyword(s.Name) {
				return c.errorf(s.Line, "cannot assign to %q", s.Name)
			}
			r = c.b.Reg(s.Name)
			c.vars[s.Name] = r
		}
		return c.compileExprInto(r, s.Expr)

	case *SharedStoreStmt:
		base, ok := c.sharedB[s.Name]
		if !ok {
			return c.errorf(s.Line, "shared %q not declared", s.Name)
		}
		addr, err := c.compileSharedAddr(base, s.Index, s.Line)
		if err != nil {
			return err
		}
		val, err := c.compileExpr(s.Expr)
		if err != nil {
			return err
		}
		c.b.StShared(addr, val)
		return nil

	case *GlobalStoreStmt:
		addr, err := c.compileExpr(s.Index)
		if err != nil {
			return err
		}
		val, err := c.compileExpr(s.Expr)
		if err != nil {
			return err
		}
		c.b.StGlobal(addr, val)
		return nil

	case *BarrierStmt:
		c.b.Barrier()
		return nil

	case *AtomicCall:
		// Statement form: the returned old value lands in a scratch.
		return c.compileAtomicInto(c.temp(), s)

	case *IfStmt:
		cond, err := c.compileExpr(s.Cond)
		if err != nil {
			return err
		}
		c.b.If(cond)
		if err := c.compileBlock(s.Body); err != nil {
			return err
		}
		// The reconvergence point belongs to the if itself, not to
		// whatever the last body statement happened to be.
		c.b.SetLine(s.Line)
		c.b.EndIf()
		return nil

	case *ForStmt:
		if _, dup := c.vars[s.Var]; dup {
			return c.errorf(s.Line, "loop variable %q redeclared", s.Var)
		}
		counter := c.b.Reg(s.Var)
		c.vars[s.Var] = counter

		var startOp kernel.Operand
		if v, ok := c.evalConst(s.Start); ok {
			startOp = kernel.Imm(v)
		} else {
			r, err := c.compileExpr(s.Start)
			if err != nil {
				return err
			}
			startOp = kernel.R(r)
		}
		var limitOp kernel.Operand
		if v, ok := c.evalConst(s.Limit); ok {
			limitOp = kernel.Imm(v)
		} else {
			// The loop head re-reads the limit every iteration, so the
			// limit must live in a register outside the temp pool.
			hold := c.b.Reg()
			if err := c.compileExprInto(hold, s.Limit); err != nil {
				return err
			}
			limitOp = kernel.R(hold)
		}
		c.b.For(counter, startOp, limitOp, s.Step)
		if err := c.compileBlock(s.Body); err != nil {
			return err
		}
		c.b.SetLine(s.Line)
		c.b.EndFor()
		delete(c.vars, s.Var)
		return nil
	}
	return c.errorf(StmtLine(s), "unhandled statement %T", s)
}

// compileSharedAddr produces base+index, folding constant indices.
func (c *compiler) compileSharedAddr(base int64, idx Expr, line int) (kernel.Reg, error) {
	r := c.temp()
	if v, ok := c.evalConst(idx); ok {
		c.b.Const(r, base+v)
		return r, nil
	}
	ir, err := c.compileExpr(idx)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return ir, nil
	}
	c.b.Add(r, ir, kernel.Imm(base))
	return r, nil
}

// --- expression lowering --------------------------------------------------------

// temp allocates a per-statement scratch register, reusing the pool across
// statements.
func (c *compiler) temp() kernel.Reg {
	if c.tempNext < len(c.temps) {
		r := c.temps[c.tempNext]
		c.tempNext++
		return r
	}
	r := c.b.Reg()
	c.temps = append(c.temps, r)
	c.tempNext++
	return r
}

func (c *compiler) resetTemps() { c.tempNext = 0 }

// compileExpr evaluates e into some register (possibly a named variable's
// register for a bare identifier).
func (c *compiler) compileExpr(e Expr) (kernel.Reg, error) {
	if v, ok := c.evalConst(e); ok {
		r := c.temp()
		c.b.Const(r, v)
		return r, nil
	}
	switch e := e.(type) {
	case *IdentExpr:
		switch e.Name {
		case "mp":
			return c.mpReg, nil
		case "core":
			return c.coreReg, nil
		case "nblocks":
			return c.nbReg, nil
		}
		if r, ok := c.vars[e.Name]; ok {
			return r, nil
		}
		return 0, c.errorf(e.Line, "undefined variable %q", e.Name)
	default:
		r := c.temp()
		if err := c.compileExprInto(r, e); err != nil {
			return 0, err
		}
		return r, nil
	}
}

// compileExprInto evaluates e into rd.
func (c *compiler) compileExprInto(rd kernel.Reg, e Expr) error {
	if v, ok := c.evalConst(e); ok {
		c.b.Const(rd, v)
		return nil
	}
	switch e := e.(type) {
	case *IdentExpr:
		src, err := c.compileExpr(e)
		if err != nil {
			return err
		}
		if src != rd {
			c.b.Mov(rd, src)
		}
		return nil

	case *SharedIndexExpr:
		base, ok := c.sharedB[e.Name]
		if !ok {
			return c.errorf(e.Line, "shared %q not declared", e.Name)
		}
		addr, err := c.compileSharedAddr(base, e.Index, e.Line)
		if err != nil {
			return err
		}
		c.b.LdShared(rd, addr)
		return nil

	case *GlobalIndexExpr:
		addr, err := c.compileExpr(e.Index)
		if err != nil {
			return err
		}
		c.b.LdGlobal(rd, addr)
		return nil

	case *BinExpr:
		l, err := c.compileExpr(e.L)
		if err != nil {
			return err
		}
		// Constant right operand: use immediate forms.
		if rv, ok := c.evalConst(e.R); ok {
			return c.emitBinImm(rd, l, e.Op, rv, e.Line)
		}
		r, err := c.compileExpr(e.R)
		if err != nil {
			return err
		}
		return c.emitBin(rd, l, e.Op, r, e.Line)

	case *CallExpr:
		if len(e.Args) != 2 {
			return c.errorf(e.Line, "%s expects 2 arguments", e.Fn)
		}
		l, err := c.compileExpr(e.Args[0])
		if err != nil {
			return err
		}
		r, err := c.compileExpr(e.Args[1])
		if err != nil {
			return err
		}
		if e.Fn == "min" {
			c.b.Min(rd, l, kernel.R(r))
		} else {
			c.b.Max(rd, l, kernel.R(r))
		}
		return nil

	case *AtomicCall:
		return c.compileAtomicInto(rd, e)
	}
	return c.errorf(ExprLine(e), "unhandled expression %T", e)
}

// compileAtomicInto lowers an atomic builtin: the target element's address,
// the operand value, and for atomcas the compare value — which travels in rd
// because the instruction reads Rd as compare-in and overwrites it with the
// old value.
func (c *compiler) compileAtomicInto(rd kernel.Reg, e *AtomicCall) error {
	var addr kernel.Reg
	var space kernel.Word
	switch t := e.Target.(type) {
	case *SharedIndexExpr:
		base, ok := c.sharedB[t.Name]
		if !ok {
			return c.errorf(t.Line, "shared %q not declared", t.Name)
		}
		a, err := c.compileSharedAddr(base, t.Index, t.Line)
		if err != nil {
			return err
		}
		addr, space = a, kernel.AtomShared
	case *GlobalIndexExpr:
		a, err := c.compileExpr(t.Index)
		if err != nil {
			return err
		}
		addr, space = a, kernel.AtomGlobal
	default:
		return c.errorf(e.Line, "%s target must be a shared or global element", e.Fn)
	}

	nargs := 1
	if e.Fn == "atomcas" {
		nargs = 2
	}
	if len(e.Args) != nargs {
		return c.errorf(e.Line, "%s expects %d argument(s) after the target", e.Fn, nargs)
	}
	val, err := c.compileExpr(e.Args[nargs-1])
	if err != nil {
		return err
	}
	if e.Fn == "atomcas" {
		// Evaluating the compare value into rd happens last so the address
		// and operand could still read rd's old contents; if either already
		// lives in rd, park it in a scratch first.
		if addr == rd {
			t := c.temp()
			c.b.Mov(t, addr)
			addr = t
		}
		if val == rd {
			t := c.temp()
			c.b.Mov(t, val)
			val = t
		}
		if err := c.compileExprInto(rd, e.Args[0]); err != nil {
			return err
		}
	}
	switch e.Fn {
	case "atomadd":
		c.b.AtomAdd(space, rd, addr, val)
	case "atommax":
		c.b.AtomMax(space, rd, addr, val)
	case "atomexch":
		c.b.AtomExch(space, rd, addr, val)
	default:
		c.b.AtomCAS(space, rd, addr, val)
	}
	return nil
}

func (c *compiler) emitBin(rd, l kernel.Reg, op tokKind, r kernel.Reg, line int) error {
	o := kernel.R(r)
	switch op {
	case tokPlus:
		c.b.Add(rd, l, o)
	case tokMinus:
		c.b.Sub(rd, l, o)
	case tokStar:
		c.b.Mul(rd, l, o)
	case tokSlash:
		c.b.Div(rd, l, o)
	case tokPercent:
		c.b.Mod(rd, l, o)
	case tokShl:
		c.b.Shl(rd, l, o)
	case tokShr:
		c.b.Shr(rd, l, o)
	case tokAmp:
		c.b.And(rd, l, o)
	case tokPipe:
		c.b.Or(rd, l, o)
	case tokCaret:
		c.b.Xor(rd, l, o)
	case tokLt:
		c.b.Slt(rd, l, o)
	case tokLe:
		c.b.Sle(rd, l, o)
	case tokGt:
		c.b.Slt(rd, r, kernel.R(l)) // a > b ⇔ b < a
	case tokGe:
		c.b.Sle(rd, r, kernel.R(l))
	case tokEq:
		c.b.Seq(rd, l, o)
	case tokNe:
		c.b.Sne(rd, l, o)
	default:
		return c.errorf(line, "unsupported operator %s", op)
	}
	return nil
}

func (c *compiler) emitBinImm(rd, l kernel.Reg, op tokKind, imm int64, line int) error {
	o := kernel.Imm(imm)
	switch op {
	case tokPlus:
		c.b.Add(rd, l, o)
	case tokMinus:
		c.b.Sub(rd, l, o)
	case tokStar:
		c.b.Mul(rd, l, o)
	case tokSlash:
		if imm == 0 {
			return c.errorf(line, "division by constant zero")
		}
		c.b.Div(rd, l, o)
	case tokPercent:
		if imm == 0 {
			return c.errorf(line, "modulo by constant zero")
		}
		c.b.Mod(rd, l, o)
	case tokShl:
		c.b.Shl(rd, l, o)
	case tokShr:
		c.b.Shr(rd, l, o)
	case tokAmp:
		c.b.And(rd, l, o)
	case tokPipe:
		c.b.Or(rd, l, o)
	case tokCaret:
		c.b.Xor(rd, l, o)
	case tokLt:
		c.b.Slt(rd, l, o)
	case tokLe:
		c.b.Sle(rd, l, o)
	case tokGt:
		// a > imm ⇔ !(a <= imm) ⇔ (a <= imm) == 0
		c.b.Sle(rd, l, o)
		c.b.Seq(rd, rd, kernel.Imm(0))
	case tokGe:
		c.b.Slt(rd, l, o)
		c.b.Seq(rd, rd, kernel.Imm(0))
	case tokEq:
		c.b.Seq(rd, l, o)
	case tokNe:
		c.b.Sne(rd, l, o)
	default:
		return c.errorf(line, "unsupported operator %s", op)
	}
	return nil
}
