package pseudocode

import (
	"fmt"
	"strings"
)

// Parse parses one kernel definition from source text.
func Parse(src string) (*Kernel, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseKernel()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("%w: line %d col %d: %s", ErrParse, t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errorf(t, "expected %s, got %s", k, t)
	}
	return p.next(), nil
}

// declErr re-attributes an error that hit end-of-input back to the
// declaration token that was being parsed: "unterminated shared
// declaration at line 3" beats an error pointing at the EOF line.
func (p *parser) declErr(decl token, err error) error {
	if p.cur().kind != tokEOF {
		return err
	}
	return p.errorf(decl, "unterminated shared declaration")
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.next()
	}
}

// isKeyword names words with reserved statement meaning.
func isKeyword(s string) bool {
	switch s {
	case "kernel", "shared", "var", "if", "for", "to", "downto", "step",
		"end", "barrier", "global", "min", "max", "mp", "core", "b", "nblocks",
		"atomadd", "atommax", "atomexch", "atomcas":
		return true
	}
	return false
}

func (p *parser) parseKernel() (*Kernel, error) {
	p.skipNewlines()
	kw, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if kw.text != "kernel" {
		return nil, p.errorf(kw, "expected 'kernel', got %q", kw.text)
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	k := &Kernel{Name: name.text, Line: kw.line}

	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.cur().kind != tokRParen {
		for {
			pn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if isKeyword(pn.text) {
				return nil, p.errorf(pn, "parameter name %q is reserved", pn.text)
			}
			k.Params = append(k.Params, pn.text)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}

	// Shared declarations come first. Errors inside one declaration are
	// attributed to the declaration's own line: when the input simply stops
	// (unterminated declaration), the current token is EOF and its line
	// points past the end of the source — useless for finding the bug.
	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind != tokIdent || t.text != "shared" {
			break
		}
		p.next()
		sn, err := p.expect(tokIdent)
		if err != nil {
			return nil, p.declErr(t, err)
		}
		if !strings.HasPrefix(sn.text, "_") {
			return nil, p.errorf(sn, "shared variable %q must begin with '_' (paper naming convention)", sn.text)
		}
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, p.declErr(t, err)
		}
		size, err := p.parseExpr()
		if err != nil {
			return nil, p.declErr(t, err)
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, p.declErr(t, err)
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, p.declErr(t, err)
		}
		k.Shared = append(k.Shared, SharedDecl{Name: sn.text, Size: size, Line: sn.line})
	}

	body, err := p.parseBlock("kernel", kw)
	if err != nil {
		return nil, err
	}
	k.Body = body

	p.skipNewlines()
	if p.cur().kind != tokEOF {
		return nil, p.errorf(p.cur(), "unexpected trailing input %s", p.cur())
	}
	return k, nil
}

// parseBlock parses statements until 'end' (consumed) or EOF for the
// top-level kernel body. open is the construct's opening token, so a
// missing 'end' is reported at the construct's line rather than at EOF.
func (p *parser) parseBlock(ctx string, open token) ([]Stmt, error) {
	var stmts []Stmt
	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tokEOF {
			if ctx != "kernel" {
				return nil, p.errorf(open, "missing 'end' for %s", ctx)
			}
			return stmts, nil
		}
		if t.kind == tokIdent && t.text == "end" {
			if ctx == "kernel" {
				return nil, p.errorf(t, "stray 'end'")
			}
			p.next()
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errorf(t, "expected statement, got %s", t)
	}
	switch t.text {
	case "barrier":
		p.next()
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &BarrierStmt{Line: t.line}, nil

	case "var":
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if isKeyword(name.text) || strings.HasPrefix(name.text, "_") {
			return nil, p.errorf(name, "invalid variable name %q", name.text)
		}
		st := &VarStmt{Name: name.text, Line: t.line}
		if p.cur().kind == tokAssign {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Expr = e
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return st, nil

	case "if":
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		body, err := p.parseBlock("if", t)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Body: body, Line: t.line}, nil

	case "for":
		return p.parseFor()

	case "atomadd", "atommax", "atomexch", "atomcas":
		// Statement form: the old value is discarded.
		p.next()
		call, err := p.parseAtomicCall(t)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return call, nil

	case "global":
		// global[idx] = expr  |  global[idx] <== expr
		p.next()
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		op := p.cur()
		if op.kind != tokAssign && op.kind != tokMove {
			return nil, p.errorf(op, "expected '=' or '<==' after global[...]")
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &GlobalStoreStmt{Index: idx, Expr: e, Line: t.line}, nil
	}

	// Shared store or register assignment.
	name := p.next()
	if isKeyword(name.text) {
		return nil, p.errorf(name, "unexpected keyword %q", name.text)
	}
	if strings.HasPrefix(name.text, "_") {
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		op := p.cur()
		if op.kind != tokAssign && op.kind != tokMove {
			return nil, p.errorf(op, "expected '=' or '<==' after %s[...]", name.text)
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNewline); err != nil {
			return nil, err
		}
		return &SharedStoreStmt{Name: name.text, Index: idx, Expr: e, Line: t.line}, nil
	}

	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name.text, Expr: e, Line: t.line}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // 'for'
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if isKeyword(name.text) || strings.HasPrefix(name.text, "_") {
		return nil, p.errorf(name, "invalid loop variable %q", name.text)
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	start, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	dir, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	down := false
	switch dir.text {
	case "to":
	case "downto":
		down = true
	default:
		return nil, p.errorf(dir, "expected 'to' or 'downto', got %q", dir.text)
	}
	limit, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if p.cur().kind == tokIdent && p.cur().text == "step" {
		p.next()
		neg := false
		if p.cur().kind == tokMinus {
			p.next()
			neg = true
		}
		n, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		step = n.val
		if neg {
			step = -step
		}
	}
	if down {
		if step > 0 {
			step = -step
		}
	}
	if step == 0 {
		return nil, p.errorf(t, "for loop step cannot be 0")
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}
	body, err := p.parseBlock("for", t)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNewline); err != nil {
		return nil, err
	}
	return &ForStmt{Var: name.text, Start: start, Limit: limit, Step: step, Body: body, Line: t.line}, nil
}

// parseAtomicCall parses what follows an atomadd/atommax/atomexch/atomcas
// name token: '(' target ',' operand ')' — atomcas takes '(' target ','
// compare ',' operand ')'. The target must be a shared or global element.
func (p *parser) parseAtomicCall(name token) (*AtomicCall, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	target, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch target.(type) {
	case *SharedIndexExpr, *GlobalIndexExpr:
	default:
		return nil, p.errorf(name, "%s target must be a shared (_name[i]) or global[i] element", name.text)
	}
	nargs := 1
	if name.text == "atomcas" {
		nargs = 2
	}
	args := make([]Expr, 0, nargs)
	for i := 0; i < nargs; i++ {
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &AtomicCall{Fn: name.text, Target: target, Args: args, Line: name.line}, nil
}

// Expression parsing: precedence climbing.
//
//	1: | ^
//	2: &
//	3: == != < <= > >=
//	4: << >>
//	5: + -
//	6: * / %
func binPrec(k tokKind) int {
	switch k {
	case tokPipe, tokCaret:
		return 1
	case tokAmp:
		return 2
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		return 3
	case tokShl, tokShr:
		return 4
	case tokPlus, tokMinus:
		return 5
	case tokStar, tokSlash, tokPercent:
		return 6
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec := binPrec(op.kind)
		if prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op.kind, L: left, R: right, Line: op.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokMinus {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: tokMinus, L: &NumExpr{Val: 0, Line: t.line}, R: e, Line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return &NumExpr{Val: t.val, Line: t.line}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.next()
		switch t.text {
		case "min", "max":
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
			bArg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &CallExpr{Fn: t.text, Args: []Expr{a, bArg}, Line: t.line}, nil
		case "atomadd", "atommax", "atomexch", "atomcas":
			return p.parseAtomicCall(t)
		case "global":
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &GlobalIndexExpr{Index: idx, Line: t.line}, nil
		}
		if strings.HasPrefix(t.text, "_") {
			if _, err := p.expect(tokLBracket); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &SharedIndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		}
		if isKeyword(t.text) && t.text != "mp" && t.text != "core" && t.text != "b" && t.text != "nblocks" {
			return nil, p.errorf(t, "unexpected keyword %q in expression", t.text)
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	}
	return nil, p.errorf(t, "expected expression, got %s", t)
}
