package pseudocode

import (
	"errors"
	"testing"

	"atgpu/internal/kernel"
	"atgpu/internal/mem"
)

// TestAtomicParse pins the surface syntax: statement form discards the old
// value, expression form binds it, and atomcas carries its extra compare
// argument.
func TestAtomicParse(t *testing.T) {
	src := `
kernel atoms(n)
  shared _s[b]
  atomadd(_s[core], 1)
  atommax(global[n], core)
  x = atomexch(_s[0], core)
  y = atomcas(_s[0], x, core + 1)
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Body) != 4 {
		t.Fatalf("body has %d statements, want 4", len(k.Body))
	}
	add, ok := k.Body[0].(*AtomicCall)
	if !ok || add.Fn != "atomadd" || len(add.Args) != 1 {
		t.Fatalf("statement 0 = %#v, want atomadd AtomicCall with 1 arg", k.Body[0])
	}
	if _, ok := add.Target.(*SharedIndexExpr); !ok {
		t.Fatalf("atomadd target is %T, want *SharedIndexExpr", add.Target)
	}
	maxc, ok := k.Body[1].(*AtomicCall)
	if !ok || maxc.Fn != "atommax" {
		t.Fatalf("statement 1 = %#v, want atommax AtomicCall", k.Body[1])
	}
	if _, ok := maxc.Target.(*GlobalIndexExpr); !ok {
		t.Fatalf("atommax target is %T, want *GlobalIndexExpr", maxc.Target)
	}
	exch, ok := k.Body[2].(*AssignStmt)
	if !ok {
		t.Fatalf("statement 2 = %#v, want assignment from atomexch", k.Body[2])
	}
	if call, ok := exch.Expr.(*AtomicCall); !ok || call.Fn != "atomexch" || len(call.Args) != 1 {
		t.Fatalf("atomexch expression = %#v", exch.Expr)
	}
	cas, ok := k.Body[3].(*AssignStmt)
	if !ok {
		t.Fatalf("statement 3 = %#v, want assignment from atomcas", k.Body[3])
	}
	if call, ok := cas.Expr.(*AtomicCall); !ok || call.Fn != "atomcas" || len(call.Args) != 2 {
		t.Fatalf("atomcas expression = %#v", cas.Expr)
	}
}

func TestAtomicParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"plain var target", "kernel k()\natomadd(x, 1)\n"},
		{"constant target", "kernel k()\natomadd(3, 1)\n"},
		{"missing operand", "kernel k()\nshared _s[4]\natomadd(_s[0])\n"},
		{"atomcas missing compare", "kernel k()\natomcas(global[0], 1)\n"},
		{"unclosed call", "kernel k()\nshared _s[4]\natomadd(_s[0], 1\n"},
		{"no parens", "kernel k()\natomadd\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parse accepted %q", c.name, c.src)
		}
	}
}

func TestAtomicCompileErrors(t *testing.T) {
	// The target's shared array must be declared, exactly as for plain
	// shared accesses.
	if _, err := CompileSource("kernel k()\natomadd(_s[0], 1)\n", 4, nil); !errors.Is(err, ErrCompile) {
		t.Errorf("undeclared shared atomic target: err = %v, want ErrCompile", err)
	}
}

// TestAtomicOpcodeLowering: each builtin lowers to its own opcode, shared
// and global targets both reachable.
func TestAtomicOpcodeLowering(t *testing.T) {
	prog, err := CompileSource(`
kernel lower()
  shared _s[b]
  atomadd(_s[core], 1)
  atommax(_s[core], 2)
  x = atomexch(global[core], 3)
  y = atomcas(global[core], x, 4)
  global[core] = x + y
`, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := prog.CountStatic()
	for _, op := range []kernel.Op{kernel.OpAtomAdd, kernel.OpAtomMax, kernel.OpAtomExch, kernel.OpAtomCAS} {
		if counts[op] != 1 {
			t.Errorf("%v lowered %d times, want 1: %v", op, counts[op], counts)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("compiled atomic program invalid: %v\n%s", err, prog.Disassemble())
	}
}

// TestAtomAddDSL: every lane of every block bumps one contended shared
// counter, then lane 0 drains it into a per-block global slot — the
// canonical use the syntax exists for.
func TestAtomAddDSL(t *testing.T) {
	src := `
kernel count(outBase)
  shared _c[1]
  iszero = core == 0
  if iszero
    _c[0] = 0
  end
  barrier
  atomadd(_c[0], core + 1)
  barrier
  if iszero
    global[outBase + mp] <== _c[0]
  end
`
	out := run(t, src, map[string]int64{"outBase": 0}, 3, make([]mem.Word, 8))
	// Lanes 0..3 contribute 1+2+3+4 = 10 per block.
	for blk := 0; blk < 3; blk++ {
		if out[blk] != 10 {
			t.Fatalf("block %d counter = %d, want 10", blk, out[blk])
		}
	}
}

// TestAtomExchOldValueDSL pins the expression form and the warp's
// deterministic lane-order serialisation: each lane receives exactly the
// value the previous lane deposited.
func TestAtomExchOldValueDSL(t *testing.T) {
	src := `
kernel exch(seed, outBase)
  shared _s[1]
  iszero = core == 0
  if iszero
    _s[0] = seed
  end
  barrier
  x = atomexch(_s[0], core + 10)
  global[outBase + core] = x
  barrier
  if iszero
    global[outBase + b] <== _s[0]
  end
`
	out := run(t, src, map[string]int64{"seed": 7, "outBase": 0}, 1, make([]mem.Word, 8))
	want := []mem.Word{7, 10, 11, 12} // lane k sees lane k-1's deposit
	for lane, w := range want {
		if out[lane] != w {
			t.Fatalf("lane %d old value = %d, want %d", lane, out[lane], w)
		}
	}
	if out[4] != 13 {
		t.Fatalf("final cell = %d, want last lane's deposit 13", out[4])
	}
}

// TestAtomCASDSL: only the first lane's compare succeeds; the rest observe
// the winner's value — the lock-acquisition idiom.
func TestAtomCASDSL(t *testing.T) {
	src := `
kernel cas(outBase)
  shared _s[1]
  iszero = core == 0
  if iszero
    _s[0] = 0
  end
  barrier
  old = atomcas(_s[0], 0, core + 1)
  global[outBase + core] = old
  barrier
  if iszero
    global[outBase + b] <== _s[0]
  end
`
	out := run(t, src, map[string]int64{"outBase": 0}, 1, make([]mem.Word, 8))
	want := []mem.Word{0, 1, 1, 1} // lane 0 wins; later lanes fail and see 1
	for lane, w := range want {
		if out[lane] != w {
			t.Fatalf("lane %d old value = %d, want %d", lane, out[lane], w)
		}
	}
	if out[4] != 1 {
		t.Fatalf("final cell = %d, want the winner's 1", out[4])
	}
}

// TestAtomMaxGlobalDSL: a cross-block global max is deterministic however
// blocks interleave, because max is commutative.
func TestAtomMaxGlobalDSL(t *testing.T) {
	src := `
kernel gmax(n, slot)
  idx = mp * b + core
  if idx < n
    v = idx * 3 % 17
    atommax(global[slot], v)
  end
`
	n := 23
	out := run(t, src, map[string]int64{"n": int64(n), "slot": 0}, 6, make([]mem.Word, 4))
	var want mem.Word
	for i := 0; i < n; i++ {
		if v := mem.Word(i * 3 % 17); v > want {
			want = v
		}
	}
	if out[0] != want {
		t.Fatalf("global max = %d, want %d", out[0], want)
	}
}
