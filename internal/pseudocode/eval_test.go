package pseudocode

import (
	"testing"

	"atgpu/internal/mem"
)

// TestPlanExpressionOperators drives evalPlanExpr through every operator
// by sizing device arrays with computed expressions and transferring them
// out to observe the evaluated sizes.
func TestPlanExpressionOperators(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"3 + 4", 7},
		{"10 - 4", 6},
		{"3 * 4", 12},
		{"9 / 2", 4},
		{"9 % 4", 1},
		{"1 << 3", 8},
		{"16 >> 2", 4},
		{"(2 < 3) + 5", 6},
		{"(3 <= 3) + 5", 6},
		{"(4 > 3) + 5", 6},
		{"(4 >= 5) + 5", 5},
		{"(4 == 4) + 5", 6},
		{"(4 != 4) + 5", 5},
		{"(6 & 3) + 1", 3},
		{"(4 | 1) + 1", 6},
		{"(6 ^ 3) + 1", 6},
		{"min(7, 9)", 7},
		{"max(7, 9)", 9},
		{"min(9, 7)", 7},
		{"max(9, 7)", 9},
		{"-3 + 10", 7},
		{"n * 2", 12},
		{"b + 1", 5}, // Tiny warp width 4
	}
	for _, c := range cases {
		src := "plan p(n)\ndev a[" + c.expr + "]\nA W a\n"
		pl, err := ParsePlan(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.expr, err)
		}
		h := planHost(t, 4096)
		res, err := pl.Run(PlanEnv{Host: h, Params: map[string]int64{"n": 6}})
		if err != nil {
			t.Fatalf("%s: run: %v", c.expr, err)
		}
		if got := len(res.Out["A"]); got != c.want {
			t.Errorf("%s: array size %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestPlanExpressionErrors(t *testing.T) {
	cases := []string{
		"plan p()\ndev a[1 / 0]\n",
		"plan p()\ndev a[1 % 0]\n",
		"plan p()\ndev a[unknown]\n",
		"plan p()\ndev a[_s[0]]\n",
		"plan p()\ndev a[global[0]]\n",
		"plan p()\ndev a[min(1)]\n", // parse error at min arity
	}
	for _, src := range cases {
		pl, err := ParsePlan(src)
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, err := pl.Run(PlanEnv{Host: planHost(t, 1024)}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestKernelImmediateComparisons drives emitBinImm's comparison branches:
// every comparison against a constant right operand, per lane.
func TestKernelImmediateComparisons(t *testing.T) {
	src := `
kernel cmp()
  x = core
  global[core * 8 + 0] = (x < 2)
  global[core * 8 + 1] = (x <= 2)
  global[core * 8 + 2] = (x > 2)
  global[core * 8 + 3] = (x >= 2)
  global[core * 8 + 4] = (x == 2)
  global[core * 8 + 5] = (x != 2)
  global[core * 8 + 6] = (x & 1) | (x ^ 1)
  global[core * 8 + 7] = x % 3 + x / 2
`
	out := run(t, src, nil, 1, make([]mem.Word, 40))
	for lane := 0; lane < 4; lane++ {
		x := int64(lane)
		want := []int64{
			b2i(x < 2), b2i(x <= 2), b2i(x > 2), b2i(x >= 2),
			b2i(x == 2), b2i(x != 2),
			(x & 1) | (x ^ 1), x%3 + x/2,
		}
		for i, w := range want {
			if out[lane*8+i] != w {
				t.Fatalf("lane %d slot %d = %d, want %d", lane, i, out[lane*8+i], w)
			}
		}
	}
}

// TestKernelConstFolding drives evalConst over every operator via shared
// array sizes, which must be fully folded.
func TestKernelConstFolding(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"2 + 3", 5},
		{"7 - 3", 4},
		{"3 * 3", 9},
		{"9 / 2", 4},
		{"9 % 4", 1},
		{"1 << 2", 4},
		{"8 >> 1", 4},
		{"6 & 3", 2},
		{"6 | 1", 7},
		{"6 ^ 1", 7},
		{"(2 < 3) + 4", 5},
		{"(2 <= 1) + 4", 4},
		{"(2 > 1) + 4", 5},
		{"(2 >= 3) + 4", 4},
		{"(2 == 2) + 4", 5},
		{"(2 != 2) + 4", 4},
		{"min(3, 8)", 3},
		{"max(3, 8)", 8},
		{"b * 2", 8},
		{"n + 1", 7},
	}
	for _, c := range cases {
		src := "kernel k(n)\nshared _s[" + c.expr + "]\nbarrier\n"
		prog, err := CompileSource(src, 4, map[string]int64{"n": 6})
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if prog.SharedWords != c.want {
			t.Errorf("%s: shared = %d, want %d", c.expr, prog.SharedWords, c.want)
		}
	}
}

// TestKernelDivModByZeroConstFold: constant division by zero is not
// foldable and must surface as a compile error at use sites requiring a
// constant.
func TestKernelDivModByZeroConstFold(t *testing.T) {
	for _, expr := range []string{"4 / 0", "4 % 0"} {
		src := "kernel k()\nshared _s[" + expr + "]\nbarrier\n"
		if _, err := CompileSource(src, 4, nil); err == nil {
			t.Errorf("accepted shared size %q", expr)
		}
	}
}

func TestTokenStrings(t *testing.T) {
	for k := tokEOF; k <= tokNe; k++ {
		if k.String() == "" {
			t.Errorf("token kind %d has empty name", k)
		}
	}
	if tokKind(99).String() == "" {
		t.Error("unknown token should still print")
	}
	// token String forms.
	if (token{kind: tokIdent, text: "abc"}).String() != `"abc"` {
		t.Error("ident token string wrong")
	}
	if (token{kind: tokNumber, val: 42}).String() != "42" {
		t.Error("number token string wrong")
	}
	if (token{kind: tokPlus}).String() != "+" {
		t.Error("operator token string wrong")
	}
}
