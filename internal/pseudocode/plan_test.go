package pseudocode

import (
	"errors"
	"testing"

	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

const vecAddKernelSrc = `
kernel vecadd(n, baseA, baseB, baseC)
  shared _s[3 * b]
  idx = mp * b + core
  if idx < n
    _s[core] <== global[baseA + idx]
    _s[core + b] <== global[baseB + idx]
    _s[core + 2 * b] = _s[core] + _s[core + b]
    global[baseC + idx] <== _s[core + 2 * b]
  end
`

// The paper's full vector-addition pseudocode: transfers in, kernel,
// transfer out — written entirely in the notation.
const vecAddPlanSrc = `
# Pseudocode Vector Addition (paper §IV-A)
plan vecadd(n)
  dev a[n]
  dev bv[n]
  dev c[n]
  a W A          # Transfer data to Device
  bv W B
  launch vecadd(n = n, baseA = a, baseB = bv, baseC = c) blocks (n + b - 1) / b
  C W c          # Transfer output to Host
  sync
`

func planHost(t *testing.T, globalWords int) *simgpu.Host {
	t.Helper()
	cfg := simgpu.Tiny()
	if globalWords > cfg.GlobalWords {
		cfg.GlobalWords = globalWords
	}
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		t.Fatal(err)
	}
	h, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPlanVecAddEndToEnd(t *testing.T) {
	kern, err := Parse(vecAddKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan(vecAddPlanSrc)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Name != "vecadd" || len(plan.Params) != 1 || len(plan.Stmts) != 8 {
		t.Fatalf("plan = %+v", plan)
	}

	n := 37
	A := make([]mem.Word, n)
	B := make([]mem.Word, n)
	for i := range A {
		A[i] = mem.Word(i * 2)
		B[i] = mem.Word(100 - i)
	}
	h := planHost(t, 3*n+64)
	res, err := plan.Run(PlanEnv{
		Host:    h,
		Kernels: map[string]*Kernel{"vecadd": kern},
		Params:  map[string]int64{"n": int64(n)},
		In:      map[string][]mem.Word{"A": A, "B": B},
	})
	if err != nil {
		t.Fatal(err)
	}
	C, ok := res.Out["C"]
	if !ok {
		t.Fatal("plan produced no C buffer")
	}
	for i := 0; i < n; i++ {
		if C[i] != A[i]+B[i] {
			t.Fatalf("C[%d] = %d, want %d", i, C[i], A[i]+B[i])
		}
	}
	// Timeline must show the model's round structure.
	if h.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", h.Rounds())
	}
	if h.TransferTime() <= 0 || h.KernelTime() <= 0 {
		t.Fatal("plan did not advance the clocks")
	}
	ts := h.TransferStats()
	if ts.InWords != 2*n || ts.OutWords != n {
		t.Fatalf("transfer stats = %+v, want I=%d O=%d", ts, 2*n, n)
	}
	if ts.InTransactions != 2 || ts.OutTransactions != 1 {
		t.Fatalf("transactions = %d/%d, want 2/1 (the paper's Î and Ô)",
			ts.InTransactions, ts.OutTransactions)
	}
}

func TestPlanParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"not a plan", "kernel k()\n"},
		{"missing paren", "plan p(\n"},
		{"dev capitalised", "plan p()\ndev Abc[4]\n"},
		{"dev underscore", "plan p()\ndev _x[4]\n"},
		{"W both host", "plan p()\nA W B\n"},
		{"W both device", "plan p()\ndev a[4]\ndev c[4]\na W c\n"},
		{"launch missing blocks", "plan p()\nlaunch k(n = 1)\n"},
		{"bad statement", "plan p()\n42\n"},
		{"missing W", "plan p()\ndev a[4]\na X B\n"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.src); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
		}
	}
}

func TestPlanRunErrors(t *testing.T) {
	kern, err := Parse(vecAddKernelSrc)
	if err != nil {
		t.Fatal(err)
	}
	goodEnv := func(h *simgpu.Host) PlanEnv {
		return PlanEnv{
			Host:    h,
			Kernels: map[string]*Kernel{"vecadd": kern},
			Params:  map[string]int64{"n": 8},
			In:      map[string][]mem.Word{"A": make([]mem.Word, 8), "B": make([]mem.Word, 8)},
		}
	}

	plan, err := ParsePlan(vecAddPlanSrc)
	if err != nil {
		t.Fatal(err)
	}

	// Nil host.
	env := goodEnv(nil)
	if _, err := plan.Run(env); !errors.Is(err, ErrCompile) {
		t.Errorf("nil host: %v", err)
	}
	// Unbound parameter.
	env = goodEnv(planHost(t, 1024))
	env.Params = nil
	if _, err := plan.Run(env); !errors.Is(err, ErrCompile) {
		t.Errorf("unbound param: %v", err)
	}
	// Missing host buffer.
	env = goodEnv(planHost(t, 1024))
	delete(env.In, "B")
	if _, err := plan.Run(env); !errors.Is(err, ErrCompile) {
		t.Errorf("missing buffer: %v", err)
	}
	// Missing kernel.
	env = goodEnv(planHost(t, 1024))
	env.Kernels = nil
	if _, err := plan.Run(env); !errors.Is(err, ErrCompile) {
		t.Errorf("missing kernel: %v", err)
	}
	// Oversized host buffer.
	env = goodEnv(planHost(t, 1024))
	env.In["A"] = make([]mem.Word, 99)
	if _, err := plan.Run(env); !errors.Is(err, ErrCompile) {
		t.Errorf("oversized buffer: %v", err)
	}

	// Device array redeclared.
	dup, err := ParsePlan("plan p()\ndev a[4]\ndev a[4]\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dup.Run(PlanEnv{Host: planHost(t, 1024)}); !errors.Is(err, ErrCompile) {
		t.Errorf("redeclared array: %v", err)
	}
	// Non-positive size.
	zero, err := ParsePlan("plan p(n)\ndev a[n]\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zero.Run(PlanEnv{Host: planHost(t, 1024), Params: map[string]int64{"n": 0}}); !errors.Is(err, ErrCompile) {
		t.Errorf("zero-size array: %v", err)
	}
	// Unknown device array in a transfer.
	unk, err := ParsePlan("plan p()\nX W a\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unk.Run(PlanEnv{Host: planHost(t, 1024)}); !errors.Is(err, ErrCompile) {
		t.Errorf("unknown array: %v", err)
	}
}

// TestPlanMultiRound drives a two-round plan (two launches with a sync
// between), checking σ accounting.
func TestPlanMultiRound(t *testing.T) {
	kern, err := Parse(`
kernel addone(n, base)
  idx = mp * b + core
  if idx < n
    v = global[base + idx]
    global[base + idx] = v + 1
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan(`
plan twice(n)
  dev x[n]
  x W X
  launch addone(n = n, base = x) blocks (n + b - 1) / b
  sync
  launch addone(n = n, base = x) blocks (n + b - 1) / b
  Y W x
  sync
`)
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	X := make([]mem.Word, n)
	for i := range X {
		X[i] = mem.Word(i)
	}
	h := planHost(t, n+64)
	res, err := plan.Run(PlanEnv{
		Host:    h,
		Kernels: map[string]*Kernel{"addone": kern},
		Params:  map[string]int64{"n": int64(n)},
		In:      map[string][]mem.Word{"X": X},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Out["Y"] {
		if v != mem.Word(i)+2 {
			t.Fatalf("Y[%d] = %d, want %d", i, v, i+2)
		}
	}
	if h.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", h.Rounds())
	}
	if h.Launches() != 2 {
		t.Fatalf("launches = %d, want 2", h.Launches())
	}
}
