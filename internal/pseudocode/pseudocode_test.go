package pseudocode

import (
	"errors"
	"strings"
	"testing"

	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
)

// run compiles src with params, launches it on a Tiny device with the
// given global memory contents, and returns global memory afterwards.
func run(t *testing.T, src string, params map[string]int64, blocks int, initial []mem.Word) []mem.Word {
	t.Helper()
	prog, err := CompileSource(src, 4, params)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := simgpu.Tiny()
	dev, err := simgpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Global().WriteSlice(0, initial); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch(prog, blocks); err != nil {
		t.Fatalf("launch: %v", err)
	}
	out, err := dev.Global().ReadSlice(0, len(initial)+64)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseBasics(t *testing.T) {
	src := `
# vector add in the paper's pseudocode
kernel vecadd(n, baseA, baseB, baseC)
  shared _a[b]
  shared _bv[b]
  shared _c[b]
  idx = mp * b + core
  if idx < n
    _a[core] <== global[baseA + idx]
    _bv[core] <== global[baseB + idx]
    _c[core] = _a[core] + _bv[core]
    global[baseC + idx] <== _c[core]
  end
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "vecadd" || len(k.Params) != 4 || len(k.Shared) != 3 {
		t.Fatalf("kernel = %+v", k)
	}
	if len(k.Body) != 2 {
		t.Fatalf("body has %d statements, want 2 (assign, if)", len(k.Body))
	}
	ifs, ok := k.Body[1].(*IfStmt)
	if !ok {
		t.Fatalf("second statement is %T, want IfStmt", k.Body[1])
	}
	if len(ifs.Body) != 4 {
		t.Fatalf("if body has %d statements", len(ifs.Body))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no kernel", "foo bar\n"},
		{"missing paren", "kernel k(a\n"},
		{"reserved param", "kernel k(core)\n"},
		{"shared without underscore", "kernel k()\nshared s[4]\n"},
		{"stray end", "kernel k()\nend\n"},
		{"missing end", "kernel k()\nif core < 2\nbarrier\n"},
		{"bad for direction", "kernel k()\nfor i = 0 upto 4\nend\n"},
		{"zero step", "kernel k()\nfor i = 0 to 4 step 0\nend\n"},
		{"assign keyword", "kernel k()\nfor = 3\n"},
		{"bad char", "kernel k()\nx = 3 ? 4\n"},
		{"bang", "kernel k()\nx = 3 ! 4\n"},
		{"trailing garbage", "kernel k()\nbarrier\nend\n"},
		{"min arity", "kernel k()\nx = min(1)\n"},
		{"keyword in expr", "kernel k()\nx = shared\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parse accepted %q", c.name, c.src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Parse("kernel k()\nx = 9999999999999999999999\n"); !errors.Is(err, ErrLex) {
		t.Errorf("huge number: %v", err)
	}
	if _, err := Parse("kernel k()\nx = $\n"); !errors.Is(err, ErrLex) {
		t.Errorf("bad char: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int64
	}{
		{"unbound param", "kernel k(n)\nbarrier\n", nil},
		{"unknown binding", "kernel k()\nbarrier\n", map[string]int64{"x": 1}},
		{"non-const shared size", "kernel k()\nshared _s[core]\nbarrier\n", nil},
		{"non-positive shared", "kernel k(n)\nshared _s[n]\nbarrier\n", map[string]int64{"n": 0}},
		{"shared redeclared", "kernel k()\nshared _s[4]\nshared _s[4]\nbarrier\n", nil},
		{"undeclared shared", "kernel k()\n_s[0] = 1\n", nil},
		{"undefined var", "kernel k()\nx = y + 1\n", nil},
		{"assign to param", "kernel k(n)\nn = 3\n", map[string]int64{"n": 1}},
		{"var redeclared", "kernel k()\nvar x\nvar x\n", nil},
		{"var shadows param", "kernel k(n)\nvar n\n", map[string]int64{"n": 1}},
		{"loop var redeclared", "kernel k()\nvar i\nfor i = 0 to 3\nend\n", nil},
		{"const div zero", "kernel k()\nvar x = 1\nx = x / 0\n", nil},
		{"undeclared shared load", "kernel k()\nvar x = _s[0]\n", nil},
	}
	for _, c := range cases {
		if _, err := CompileSource(c.src, 4, c.params); !errors.Is(err, ErrCompile) {
			t.Errorf("%s: err = %v, want ErrCompile", c.name, err)
		}
	}
}

// TestVecAddDSL runs the paper's vector-addition pseudocode end to end and
// checks the result, exercising every data-movement operator.
func TestVecAddDSL(t *testing.T) {
	src := `
kernel vecadd(n, baseA, baseB, baseC)
  shared _a[b]
  shared _bv[b]
  shared _c[b]
  idx = mp * b + core
  if idx < n
    _a[core] <== global[baseA + idx]
    _bv[core] <== global[baseB + idx]
    _c[core] = _a[core] + _bv[core]
    global[baseC + idx] <== _c[core]
  end
`
	n := 10
	initial := make([]mem.Word, 48)
	for i := 0; i < n; i++ {
		initial[i] = mem.Word(i + 1)     // a at 0
		initial[16+i] = mem.Word(10 * i) // b at 16
	}
	out := run(t, src, map[string]int64{"n": int64(n), "baseA": 0, "baseB": 16, "baseC": 32}, 3, initial)
	for i := 0; i < n; i++ {
		want := mem.Word(i+1) + mem.Word(10*i)
		if out[32+i] != want {
			t.Fatalf("c[%d] = %d, want %d", i, out[32+i], want)
		}
	}
	// Tail elements untouched.
	for i := n; i < 16; i++ {
		if out[32+i] != 0 {
			t.Fatalf("tail c[%d] = %d, want 0", i, out[32+i])
		}
	}
}

// TestReduceDSL implements one tree-reduction round in the DSL with a
// down-counting stride loop, barriers and a divergent if.
func TestReduceDSL(t *testing.T) {
	src := `
kernel reduce(n, inBase, outBase)
  shared _s[b]
  idx = mp * b + core
  _s[core] = 0
  if idx < n
    _s[core] <== global[inBase + idx]
  end
  barrier
  for stride = b / 2 downto 0 step 1
    cond = core < stride
    if cond
      _s[core] = _s[core] + _s[core + stride]
    end
    barrier
  end
  iszero = core == 0
  if iszero
    global[outBase + mp] <== _s[0]
  end
`
	n := 13
	initial := make([]mem.Word, 32)
	var want mem.Word
	for i := 0; i < n; i++ {
		initial[i] = mem.Word(i * 3)
		want += initial[i]
	}
	out := run(t, src, map[string]int64{"n": int64(n), "inBase": 0, "outBase": 16}, 4, initial)
	var got mem.Word
	for blk := 0; blk < 4; blk++ {
		got += out[16+blk]
	}
	if got != want {
		t.Fatalf("partial sums total %d, want %d", got, want)
	}
}

// TestForLoopSemantics checks counted loops: up, down, and step.
func TestForLoopSemantics(t *testing.T) {
	src := `
kernel loops()
  sum = 0
  for i = 0 to 10 step 3
    sum = sum + i
  end
  for j = 5 downto 2
    sum = sum + 100 * j
  end
  global[core] = sum
`
	out := run(t, src, nil, 1, make([]mem.Word, 8))
	// up: 0+3+6+9 = 18; down (j>2): 5,4,3 → 1200. total 1218.
	for lane := 0; lane < 4; lane++ {
		if out[lane] != 1218 {
			t.Fatalf("lane %d sum = %d, want 1218", lane, out[lane])
		}
	}
}

// TestOperatorSemantics evaluates an expression zoo against Go semantics.
func TestOperatorSemantics(t *testing.T) {
	src := `
kernel ops(p)
  x = core + 3
  y = p
  global[core * 12 + 0] = x + y
  global[core * 12 + 1] = x - y
  global[core * 12 + 2] = x * y
  global[core * 12 + 3] = x / y
  global[core * 12 + 4] = x % y
  global[core * 12 + 5] = x << 1
  global[core * 12 + 6] = x >> 1
  global[core * 12 + 7] = (x & y) + (x | y) + (x ^ y)
  global[core * 12 + 8] = (x < y) + (x <= y) * 10 + (x > y) * 100 + (x >= y) * 1000
  global[core * 12 + 9] = (x == y) + (x != y) * 10
  global[core * 12 + 10] = min(x, y)
  global[core * 12 + 11] = max(x, -y)
`
	p := int64(5)
	out := run(t, src, map[string]int64{"p": p}, 1, make([]mem.Word, 64))
	for lane := 0; lane < 4; lane++ {
		x := int64(lane + 3)
		y := p
		want := []int64{
			x + y, x - y, x * y, x / y, x % y, x << 1, x >> 1,
			(x & y) + (x | y) + (x ^ y),
			b2i(x < y) + b2i(x <= y)*10 + b2i(x > y)*100 + b2i(x >= y)*1000,
			b2i(x == y) + b2i(x != y)*10,
			min64(x, y), max64(x, -y),
		}
		for i, w := range want {
			if out[lane*12+i] != w {
				t.Fatalf("lane %d slot %d = %d, want %d", lane, i, out[lane*12+i], w)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestConstantFolding: fully constant expressions must compile to a single
// const, and immediate forms must be used for constant right operands.
func TestConstantFolding(t *testing.T) {
	prog, err := CompileSource(`
kernel fold(n)
  x = (n * 4 + 2) / 3
  y = x + n
  global[core] = y
`, 4, map[string]int64{"n": 10})
	if err != nil {
		t.Fatal(err)
	}
	counts := prog.CountStatic()
	// x = const(14); y uses addi with imm 10.
	if counts[kernel.OpAddI] == 0 {
		t.Errorf("expected immediate add for '+ n': %v", counts)
	}
	if counts[kernel.OpMul] != 0 || counts[kernel.OpDiv] != 0 {
		t.Errorf("constant expression not folded: %v", counts)
	}
}

// TestBuiltinPrologueOnlyWhenUsed: builtins appear in the program only if
// the source references them.
func TestBuiltinPrologueOnlyWhenUsed(t *testing.T) {
	prog, err := CompileSource("kernel k()\nbarrier\n", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := prog.CountStatic()
	if counts[kernel.OpLaneID] != 0 || counts[kernel.OpBlockID] != 0 ||
		counts[kernel.OpBlockDim] != 0 || counts[kernel.OpNumBlocks] != 0 {
		t.Fatalf("unused builtins materialised: %v", counts)
	}
	prog, err = CompileSource("kernel k()\nglobal[core] = nblocks\n", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts = prog.CountStatic()
	if counts[kernel.OpLaneID] != 1 || counts[kernel.OpNumBlocks] != 1 {
		t.Fatalf("used builtins not materialised once: %v", counts)
	}
}

// TestSharedLayout: multiple shared arrays are laid out contiguously and
// the program's SharedWords is their sum.
func TestSharedLayout(t *testing.T) {
	prog, err := CompileSource(`
kernel layout()
  shared _x[4]
  shared _y[8]
  _x[core] = 1
  _y[core] = 2
  global[core] = _x[core] + _y[core]
`, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.SharedWords != 12 {
		t.Fatalf("SharedWords = %d, want 12", prog.SharedWords)
	}
}

// TestDSLVecAddMatchesBuilderKernel cross-checks the DSL compilation
// against the hand-built algorithms.VecAdd kernel on identical inputs —
// different compilation paths, identical results.
func TestDSLVecAddMatchesBuilderKernel(t *testing.T) {
	src := `
kernel vecadd(n, baseA, baseB, baseC)
  shared _a[3 * b]
  idx = mp * b + core
  if idx < n
    _a[core] <== global[baseA + idx]
    _a[core + b] <== global[baseB + idx]
    _a[core + 2 * b] = _a[core] + _a[core + b]
    global[baseC + idx] <== _a[core + 2 * b]
  end
`
	n := 37
	initial := make([]mem.Word, 144)
	for i := 0; i < n; i++ {
		initial[i] = mem.Word(i * i)
		initial[48+i] = mem.Word(-3 * i)
	}
	out := run(t, src,
		map[string]int64{"n": int64(n), "baseA": 0, "baseB": 48, "baseC": 96},
		(n+3)/4, initial)
	for i := 0; i < n; i++ {
		want := mem.Word(i*i) + mem.Word(-3*i)
		if out[96+i] != want {
			t.Fatalf("c[%d] = %d, want %d", i, out[96+i], want)
		}
	}
}

// TestTempPoolReuseAcrossLoopIterations guards the compiler's register
// strategy: temporaries reused across statements must be rewritten before
// every read even when the statements re-execute inside loops.
func TestTempPoolReuseAcrossLoopIterations(t *testing.T) {
	src := `
kernel temps()
  acc = 0
  for i = 0 to 6
    acc = acc + (i * 2 + 1)
    acc = acc + (i & 1)
  end
  global[core] = acc
`
	out := run(t, src, nil, 1, make([]mem.Word, 8))
	want := int64(0)
	for i := int64(0); i < 6; i++ {
		want += i*2 + 1
		want += i & 1
	}
	for lane := 0; lane < 4; lane++ {
		if out[lane] != want {
			t.Fatalf("lane %d acc = %d, want %d", lane, out[lane], want)
		}
	}
}

// TestRuntimeLoopLimit: a loop limit computed at runtime must live outside
// the temp pool (the head re-reads it every iteration).
func TestRuntimeLoopLimit(t *testing.T) {
	src := `
kernel rtlimit(n)
  lim = n * 2
  acc = 0
  for i = 0 to lim + 1
    acc = acc + 1
    junk = i * 3 + acc
  end
  global[core] = acc
`
	out := run(t, src, map[string]int64{"n": 3}, 1, make([]mem.Word, 8))
	for lane := 0; lane < 4; lane++ {
		if out[lane] != 7 {
			t.Fatalf("lane %d = %d, want 7 iterations", lane, out[lane])
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	k, err := Parse("kernel k(n)\nbarrier\n")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on unbound param")
		}
	}()
	MustCompile(k, 4, nil)
}

func TestCompiledProgramsValidate(t *testing.T) {
	srcs := []string{
		"kernel a()\nbarrier\n",
		"kernel c()\nshared _s[16]\n_s[core] = core\nbarrier\nglobal[core] = _s[core]\n",
		"kernel d(n)\nif core < n\nif core < n - 1\nglobal[core] = 1\nend\nend\n",
	}
	for _, src := range srcs {
		prog, err := CompileSource(src, 4, map[string]int64{"n": 3})
		if err != nil {
			// Kernels without 'n' reject the binding; retry bare.
			prog, err = CompileSource(src, 4, nil)
			if err != nil {
				t.Errorf("compile %q: %v", src, err)
				continue
			}
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("compiled program invalid for %q: %v\n%s", src, err, prog.Disassemble())
		}
	}
}

func TestDisassemblyReadable(t *testing.T) {
	prog, err := CompileSource("kernel k()\nglobal[core] = core * 2\n", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	if !strings.Contains(dis, "kernel k") || !strings.Contains(dis, "st.global") {
		t.Fatalf("disassembly:\n%s", dis)
	}
}
