package pseudocode

// The AST mirrors the little language's surface: a kernel is a parameter
// list, shared declarations, and a statement block.

// Kernel is a parsed pseudocode kernel.
type Kernel struct {
	Name   string
	Params []string
	Shared []SharedDecl
	Body   []Stmt
	// Line is the source line of the `kernel` header, used for diagnostics
	// that concern the kernel as a whole (e.g. parameter-binding errors).
	Line int
}

// StmtLine returns a statement's source line.
func StmtLine(s Stmt) int {
	switch s := s.(type) {
	case *AssignStmt:
		return s.Line
	case *VarStmt:
		return s.Line
	case *SharedStoreStmt:
		return s.Line
	case *GlobalStoreStmt:
		return s.Line
	case *IfStmt:
		return s.Line
	case *ForStmt:
		return s.Line
	case *BarrierStmt:
		return s.Line
	case *AtomicCall:
		return s.Line
	}
	return 0
}

// SharedDecl declares a shared array of constant size (the size expression
// is evaluated at compile time against the bound parameters).
type SharedDecl struct {
	Name string
	Size Expr
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is `name = expr` (register variable assignment; declares the
// variable on first use when preceded by `var`).
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// VarStmt is `var name [= expr]`.
type VarStmt struct {
	Name string
	Expr Expr // optional; nil means zero
	Line int
}

// SharedStoreStmt is `_s[idx] = expr` (the paper's ← into shared memory).
type SharedStoreStmt struct {
	Name  string
	Index Expr
	Expr  Expr
	Line  int
}

// GlobalStoreStmt is `global[idx] = expr` or `global[idx] <== _s[j]` (the
// paper's ⇐ toward global memory).
type GlobalStoreStmt struct {
	Index Expr
	Expr  Expr
	Line  int
}

// IfStmt is the single-block conditional.
type IfStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is the uniform counted loop `for i = start to limit [step k]`,
// iterating while i < limit (or i > limit for negative step).
type ForStmt struct {
	Var   string
	Start Expr
	Limit Expr
	Step  int64
	Body  []Stmt
	Line  int
}

// BarrierStmt is `barrier`.
type BarrierStmt struct{ Line int }

// AtomicCall is atomadd(_s[i], v), atommax, atomexch, or
// atomcas(_s[i], cmp, v): a read-modify-write of one shared or global
// element. It is both a statement (the old value is discarded) and an
// expression (it yields the element's value from before the update).
type AtomicCall struct {
	Fn     string
	Target Expr // *SharedIndexExpr or *GlobalIndexExpr
	Args   []Expr
	Line   int
}

func (*AssignStmt) stmtNode()      {}
func (*VarStmt) stmtNode()         {}
func (*SharedStoreStmt) stmtNode() {}
func (*GlobalStoreStmt) stmtNode() {}
func (*IfStmt) stmtNode()          {}
func (*ForStmt) stmtNode()         {}
func (*BarrierStmt) stmtNode()     {}
func (*AtomicCall) stmtNode()      {}

// ExprLine returns an expression's source line.
func ExprLine(e Expr) int {
	switch e := e.(type) {
	case *NumExpr:
		return e.Line
	case *IdentExpr:
		return e.Line
	case *SharedIndexExpr:
		return e.Line
	case *GlobalIndexExpr:
		return e.Line
	case *BinExpr:
		return e.Line
	case *CallExpr:
		return e.Line
	case *AtomicCall:
		return e.Line
	}
	return 0
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val  int64
	Line int
}

// IdentExpr is a parameter, variable, or builtin (mp, core, b, nblocks).
type IdentExpr struct {
	Name string
	Line int
}

// SharedIndexExpr is `_s[expr]` (shared load in an expression).
type SharedIndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// GlobalIndexExpr is `global[expr]` (global load in an expression).
type GlobalIndexExpr struct {
	Index Expr
	Line  int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   tokKind
	L, R Expr
	Line int
}

// CallExpr is min(a,b) or max(a,b).
type CallExpr struct {
	Fn   string
	Args []Expr
	Line int
}

func (*NumExpr) exprNode()         {}
func (*IdentExpr) exprNode()       {}
func (*SharedIndexExpr) exprNode() {}
func (*GlobalIndexExpr) exprNode() {}
func (*BinExpr) exprNode()         {}
func (*CallExpr) exprNode()        {}
func (*AtomicCall) exprNode()      {}
