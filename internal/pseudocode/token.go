// Package pseudocode implements the ATGPU pseudocode notation of the
// paper's Section II as a small textual language that compiles to
// kernel.Program for the simulated device.
//
// The paper's conventions are kept: a kernel body executes on every core
// of every multiprocessor in lockstep ("for all mpρ ∈ MP … for all cρ,ε ∈
// Cρ in parallel do"); variable scope is encoded in the name — shared
// variables begin with an underscore, global arrays are lower-case, and
// the host side (capitalised variables, the W transfer operator) lives
// outside the kernel in the host round plan; if-statements have a single
// conditional block; loops must be warp-uniform.
//
// Grammar (line-oriented; '#' starts a comment; blocks close with 'end'):
//
//	kernel NAME(param, ...)          header; params bind to constants
//	shared _name[constexpr]          shared array declaration
//	var    x                         register variable declaration
//	x = expr                         register assignment
//	_s[expr] = expr                  shared store      (the paper's ←)
//	_s[expr] <== global[expr]        global→shared load (the paper's ⇐)
//	global[expr] <== _s[expr]        shared→global store (the paper's ⇐)
//	global[expr] = expr              direct global store
//	x = global[expr]                 direct global load
//	if expr ... end                  single-block conditional
//	for i = expr to expr [step k]    uniform counted loop (i < limit)
//	barrier                          block-wide barrier
//	atomadd(_s[expr], expr)          atomic read-modify-write; also
//	atommax / atomexch / atomcas     atomcas(_s[i], cmp, v); targets may
//	                                 be _shared[i] or global[i]; usable as
//	                                 a statement or as an expression that
//	                                 yields the element's previous value
//
// Expressions: integer literals, parameters, variables, _shared[expr],
// global[expr], the builtins mp (multiprocessor/block index), core (lane
// index), b (warp width), nblocks, min(a,b), max(a,b), the atomic builtins
// above, and the operators + - * / % << >> & | ^ < <= > >= == != with
// conventional precedence.
package pseudocode

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent  // names, keywords resolved by the parser
	tokNumber // integer literal
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokAssign // =
	tokMove   // <== (the paper's ⇐ block transfer)
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokShl // <<
	tokShr // >>
	tokAmp
	tokPipe
	tokCaret
	tokLt
	tokLe
	tokGt
	tokGe
	tokEq // ==
	tokNe // !=
)

var tokNames = map[tokKind]string{
	tokEOF:      "end of input",
	tokNewline:  "newline",
	tokIdent:    "identifier",
	tokNumber:   "number",
	tokLParen:   "(",
	tokRParen:   ")",
	tokLBracket: "[",
	tokRBracket: "]",
	tokComma:    ",",
	tokAssign:   "=",
	tokMove:     "<==",
	tokPlus:     "+",
	tokMinus:    "-",
	tokStar:     "*",
	tokSlash:    "/",
	tokPercent:  "%",
	tokShl:      "<<",
	tokShr:      ">>",
	tokAmp:      "&",
	tokPipe:     "|",
	tokCaret:    "^",
	tokLt:       "<",
	tokLe:       "<=",
	tokGt:       ">",
	tokGe:       ">=",
	tokEq:       "==",
	tokNe:       "!=",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical unit with its source position.
type token struct {
	kind tokKind
	text string
	val  int64 // for tokNumber
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("%q", t.text)
	case tokNumber:
		return fmt.Sprintf("%d", t.val)
	default:
		return t.kind.String()
	}
}
