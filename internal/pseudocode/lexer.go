package pseudocode

import (
	"errors"
	"fmt"
	"strconv"
)

// Error categories for callers to match with errors.Is.
var (
	ErrLex     = errors.New("pseudocode: lexical error")
	ErrParse   = errors.New("pseudocode: parse error")
	ErrCompile = errors.New("pseudocode: compile error")
)

// lexer scans source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d col %d: %s", ErrLex, l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lex tokenises the whole source. Consecutive newlines collapse to one;
// a trailing newline token is always present before EOF.
func (l *lexer) lex() ([]token, error) {
	var toks []token
	emit := func(k tokKind, text string, val int64, line, col int) {
		if k == tokNewline && len(toks) > 0 && toks[len(toks)-1].kind == tokNewline {
			return // collapse blank lines
		}
		toks = append(toks, token{kind: k, text: text, val: val, line: line, col: col})
	}

	for l.pos < len(l.src) {
		line, col := l.line, l.col
		c := l.peek()
		switch {
		case c == '\n':
			l.advance()
			emit(tokNewline, "", 0, line, col)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.peek()) {
				l.advance()
			}
			emit(tokIdent, l.src[start:l.pos], 0, line, col)
		case isDigit(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.peek()) {
				l.advance()
			}
			text := l.src[start:l.pos]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, l.errorf("bad number %q", text)
			}
			emit(tokNumber, text, v, line, col)
		default:
			l.advance()
			switch c {
			case '(':
				emit(tokLParen, "(", 0, line, col)
			case ')':
				emit(tokRParen, ")", 0, line, col)
			case '[':
				emit(tokLBracket, "[", 0, line, col)
			case ']':
				emit(tokRBracket, "]", 0, line, col)
			case ',':
				emit(tokComma, ",", 0, line, col)
			case '+':
				emit(tokPlus, "+", 0, line, col)
			case '-':
				emit(tokMinus, "-", 0, line, col)
			case '*':
				emit(tokStar, "*", 0, line, col)
			case '/':
				emit(tokSlash, "/", 0, line, col)
			case '%':
				emit(tokPercent, "%", 0, line, col)
			case '&':
				emit(tokAmp, "&", 0, line, col)
			case '|':
				emit(tokPipe, "|", 0, line, col)
			case '^':
				emit(tokCaret, "^", 0, line, col)
			case '=':
				if l.peek() == '=' {
					l.advance()
					emit(tokEq, "==", 0, line, col)
				} else {
					emit(tokAssign, "=", 0, line, col)
				}
			case '!':
				if l.peek() == '=' {
					l.advance()
					emit(tokNe, "!=", 0, line, col)
				} else {
					return nil, l.errorf("unexpected '!'")
				}
			case '<':
				switch l.peek() {
				case '=':
					l.advance()
					if l.peek() == '=' {
						l.advance()
						emit(tokMove, "<==", 0, line, col)
					} else {
						emit(tokLe, "<=", 0, line, col)
					}
				case '<':
					l.advance()
					emit(tokShl, "<<", 0, line, col)
				default:
					emit(tokLt, "<", 0, line, col)
				}
			case '>':
				switch l.peek() {
				case '=':
					l.advance()
					emit(tokGe, ">=", 0, line, col)
				case '>':
					l.advance()
					emit(tokShr, ">>", 0, line, col)
				default:
					emit(tokGt, ">", 0, line, col)
				}
			default:
				return nil, l.errorf("unexpected character %q", string(c))
			}
		}
	}
	// Normalise termination: newline then EOF.
	if len(toks) == 0 || toks[len(toks)-1].kind != tokNewline {
		toks = append(toks, token{kind: tokNewline, line: l.line, col: l.col})
	}
	toks = append(toks, token{kind: tokEOF, line: l.line, col: l.col})
	return toks, nil
}
