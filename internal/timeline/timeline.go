// Package timeline provides a deterministic discrete-event simulated
// clock for the ATGPU stack.
//
// A Timeline owns a set of named Resources (the PCIe link directions,
// the SM array, the host sync path). Work is charged onto a resource
// with Schedule, which places an operation of a given duration at the
// earliest instant compatible with two rules:
//
//   - resource serialization: operations on the same resource execute
//     in submission order, back to back — an op starts no earlier than
//     the resource's previous op finished;
//   - dependency edges: an op starts no earlier than every Event it
//     was scheduled after has completed.
//
// Operations on distinct resources with no dependency edge between
// them overlap freely. The schedule is greedy (no backfilling) and a
// pure function of the submission sequence, so identical call
// sequences produce identical timelines — no goroutines, wall clocks
// or randomness are involved.
//
// The zero Event is the timeline origin (t = 0) and is always safe to
// wait on.
package timeline

import (
	"fmt"
	"time"
)

// Event marks the completion instant of a scheduled operation (or the
// origin, for the zero value). Events are immutable values: waiting on
// one never blocks, it only constrains where later operations may be
// placed.
type Event struct {
	op int           // 1-based op index; 0 = origin
	at time.Duration // completion instant
}

// Time reports the simulated instant at which the event completes.
func (e Event) Time() time.Duration { return e.at }

// Interval is one contiguous occupancy of a resource.
type Interval struct {
	Label string
	Start time.Duration
	End   time.Duration
}

// Duration reports the length of the interval.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Resource is a serially-reusable unit of hardware (one direction of
// the PCIe link, the SM array, ...). All operations charged to the
// same resource execute in submission order without overlap.
type Resource struct {
	tl        *Timeline
	name      string
	free      time.Duration // instant the last op finishes
	busy      time.Duration // total occupied time
	intervals []Interval
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// BusyTime reports the total time the resource has been occupied —
// the sum of all interval durations, regardless of overlap with other
// resources.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// FreeAt reports the instant the resource's last operation completes.
func (r *Resource) FreeAt() time.Duration { return r.free }

// Intervals returns a copy of the resource's busy intervals in
// schedule order.
func (r *Resource) Intervals() []Interval {
	out := make([]Interval, len(r.intervals))
	copy(out, r.intervals)
	return out
}

// Op is one scheduled operation, retained for introspection and
// tracing.
type Op struct {
	ID       int // 1-based, in submission order
	Label    string
	Resource string
	Start    time.Duration
	End      time.Duration
	Deps     []int // op IDs of the events this op waited on (0 = origin, omitted)
}

// Timeline is the shared simulated clock. It is not safe for
// concurrent use; callers (the simgpu Host) serialize access.
type Timeline struct {
	resources []*Resource
	ops       []Op
	makespan  time.Duration
	observer  func(Op)
}

// New returns an empty timeline at t = 0 with no resources.
func New() *Timeline { return &Timeline{} }

// NewResource registers a serially-reusable resource on the timeline.
func (t *Timeline) NewResource(name string) *Resource {
	r := &Resource{tl: t, name: name}
	t.resources = append(t.resources, r)
	return r
}

// Schedule charges an operation of duration d onto resource r,
// starting at the earliest instant that is ≥ the resource's free time
// and ≥ the completion of every event in after. It returns the event
// marking the operation's completion.
//
// A negative duration is a programming error and panics; a zero
// duration is legal and yields an instantaneous op (useful for pure
// ordering points).
func (t *Timeline) Schedule(r *Resource, d time.Duration, label string, after ...Event) Event {
	if r == nil || r.tl != t {
		panic("timeline: Schedule on a resource from a different timeline")
	}
	if d < 0 {
		panic(fmt.Sprintf("timeline: negative duration %v for %q", d, label))
	}
	start := r.free
	deps := make([]int, 0, len(after))
	for _, ev := range after {
		if ev.at > start {
			start = ev.at
		}
		if ev.op != 0 {
			deps = append(deps, ev.op)
		}
	}
	end := start + d
	r.free = end
	r.busy += d
	r.intervals = append(r.intervals, Interval{Label: label, Start: start, End: end})
	t.ops = append(t.ops, Op{
		ID:       len(t.ops) + 1,
		Label:    label,
		Resource: r.name,
		Start:    start,
		End:      end,
		Deps:     deps,
	})
	if end > t.makespan {
		t.makespan = end
	}
	if t.observer != nil {
		t.observer(t.ops[len(t.ops)-1])
	}
	return Event{op: len(t.ops), at: end}
}

// SetObserver registers fn to be called synchronously with every Op as
// it is scheduled, in submission order. It exists so an observability
// layer can mirror the timeline without the timeline importing it; a
// nil fn removes the observer. The observer survives Reset.
func (t *Timeline) SetObserver(fn func(Op)) { t.observer = fn }

// AfterAll joins events: the returned event completes when the latest
// of them does. Joining no events yields the origin.
func (t *Timeline) AfterAll(evs ...Event) Event {
	var join Event
	for _, ev := range evs {
		if ev.at > join.at || (ev.at == join.at && join.op == 0) {
			join = ev
		}
	}
	return join
}

// Makespan reports the completion instant of the latest scheduled
// operation — the simulated total elapsed time.
func (t *Timeline) Makespan() time.Duration { return t.makespan }

// Ops returns a copy of every scheduled operation in submission order.
func (t *Timeline) Ops() []Op {
	out := make([]Op, len(t.ops))
	copy(out, t.ops)
	return out
}

// Reset rewinds the timeline to t = 0, clearing all operations and
// every registered resource's occupancy. Resource handles stay valid;
// outstanding Events become stale and must not be waited on after a
// reset (they reference cleared ops).
func (t *Timeline) Reset() {
	t.ops = nil
	t.makespan = 0
	for _, r := range t.resources {
		r.free = 0
		r.busy = 0
		r.intervals = nil
	}
}
