package timeline

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestSameResourceSerializes(t *testing.T) {
	tl := New()
	link := tl.NewResource("h2d")
	a := tl.Schedule(link, 3*ms, "a")
	b := tl.Schedule(link, 2*ms, "b")
	if a.Time() != 3*ms {
		t.Fatalf("a completes at %v, want 3ms", a.Time())
	}
	if b.Time() != 5*ms {
		t.Fatalf("b completes at %v, want 5ms (serialized after a)", b.Time())
	}
	if got := link.BusyTime(); got != 5*ms {
		t.Fatalf("busy = %v, want 5ms", got)
	}
	if got := tl.Makespan(); got != 5*ms {
		t.Fatalf("makespan = %v, want 5ms", got)
	}
}

func TestDistinctResourcesOverlap(t *testing.T) {
	tl := New()
	link := tl.NewResource("h2d")
	sm := tl.NewResource("compute")
	tl.Schedule(link, 4*ms, "xfer")
	ev := tl.Schedule(sm, 3*ms, "kernel") // no dep: overlaps the transfer
	if ev.Time() != 3*ms {
		t.Fatalf("independent kernel completes at %v, want 3ms", ev.Time())
	}
	if got := tl.Makespan(); got != 4*ms {
		t.Fatalf("makespan = %v, want 4ms (max, not sum)", got)
	}
}

func TestDependencyEdges(t *testing.T) {
	tl := New()
	link := tl.NewResource("h2d")
	sm := tl.NewResource("compute")
	in := tl.Schedule(link, 4*ms, "xfer")
	k := tl.Schedule(sm, 3*ms, "kernel", in)
	if k.Time() != 7*ms {
		t.Fatalf("dependent kernel completes at %v, want 7ms", k.Time())
	}
	// Resource order still applies on top of dependencies.
	k2 := tl.Schedule(sm, 1*ms, "kernel2")
	if k2.Time() != 8*ms {
		t.Fatalf("kernel2 completes at %v, want 8ms (after kernel)", k2.Time())
	}
}

func TestAfterAllJoins(t *testing.T) {
	tl := New()
	a := tl.NewResource("a")
	b := tl.NewResource("b")
	e1 := tl.Schedule(a, 2*ms, "x")
	e2 := tl.Schedule(b, 5*ms, "y")
	join := tl.AfterAll(e1, e2)
	if join.Time() != 5*ms {
		t.Fatalf("join at %v, want 5ms", join.Time())
	}
	if empty := tl.AfterAll(); empty.Time() != 0 {
		t.Fatalf("empty join at %v, want origin", empty.Time())
	}
}

func TestZeroDurationOrderingPoint(t *testing.T) {
	tl := New()
	r := tl.NewResource("sync")
	c := tl.NewResource("compute")
	ev := tl.Schedule(c, 3*ms, "k")
	bar := tl.Schedule(r, 0, "barrier", ev)
	if bar.Time() != 3*ms {
		t.Fatalf("barrier at %v, want 3ms", bar.Time())
	}
	if r.BusyTime() != 0 {
		t.Fatalf("zero-duration op charged busy time %v", r.BusyTime())
	}
}

func TestIntervalsAndOps(t *testing.T) {
	tl := New()
	link := tl.NewResource("h2d")
	sm := tl.NewResource("compute")
	in := tl.Schedule(link, 2*ms, "xfer")
	tl.Schedule(sm, 1*ms, "kernel", in)

	ivs := link.Intervals()
	if len(ivs) != 1 || ivs[0].Label != "xfer" || ivs[0].Start != 0 || ivs[0].End != 2*ms {
		t.Fatalf("link intervals = %+v", ivs)
	}
	if d := ivs[0].Duration(); d != 2*ms {
		t.Fatalf("interval duration = %v, want 2ms", d)
	}

	ops := tl.Ops()
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(ops))
	}
	if ops[1].Resource != "compute" || len(ops[1].Deps) != 1 || ops[1].Deps[0] != ops[0].ID {
		t.Fatalf("kernel op = %+v, want dep on op %d", ops[1], ops[0].ID)
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() *Timeline {
		tl := New()
		a := tl.NewResource("a")
		b := tl.NewResource("b")
		var last Event
		for i := 0; i < 20; i++ {
			r := a
			if i%3 == 0 {
				r = b
			}
			last = tl.Schedule(r, time.Duration(i+1)*ms, "op", last)
		}
		return tl
	}
	t1, t2 := build(), build()
	if t1.Makespan() != t2.Makespan() {
		t.Fatalf("makespans differ: %v vs %v", t1.Makespan(), t2.Makespan())
	}
	o1, o2 := t1.Ops(), t2.Ops()
	for i := range o1 {
		if o1[i].Start != o2[i].Start || o1[i].End != o2[i].End {
			t.Fatalf("op %d differs: %+v vs %+v", i, o1[i], o2[i])
		}
	}
}

func TestReset(t *testing.T) {
	tl := New()
	r := tl.NewResource("r")
	tl.Schedule(r, 5*ms, "op")
	tl.Reset()
	if tl.Makespan() != 0 || r.BusyTime() != 0 || r.FreeAt() != 0 || len(tl.Ops()) != 0 {
		t.Fatal("reset left residue")
	}
	// The resource handle stays usable after a reset.
	ev := tl.Schedule(r, 2*ms, "op2")
	if ev.Time() != 2*ms {
		t.Fatalf("post-reset op completes at %v, want 2ms", ev.Time())
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	tl := New()
	r := tl.NewResource("r")
	tl.Schedule(r, -ms, "bad")
}

func TestForeignResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign resource did not panic")
		}
	}()
	t1, t2 := New(), New()
	r := t2.NewResource("r")
	t1.Schedule(r, ms, "bad")
}
