// Package sched is the repo's shared work scheduler: a bounded pool that
// runs independent, indexed jobs with panic isolation and cooperative
// cancellation. It is the common core extracted from the experiments
// worker pool (PR 2) and reused by the atgpud service workers — one
// place where the "a crashing job must not crash the process" and "a
// cancelled batch must report exactly which indices never ran" contracts
// live.
//
// Determinism contract: Run dispatches indices 0..n-1 in order and the
// caller assembles results by index, so batch output is independent of
// the worker count and of goroutine scheduling (provided each job is
// self-contained, as the experiments points are). Cancellation is the
// only scheduling-dependent outcome: which indices were already
// dispatched when the context fired depends on timing, which is exactly
// what the caller wants to know when flushing partial results.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrCancelled marks an index whose job was never started because the
// batch context was done before it could be dispatched. Jobs already
// running when the context fires run to completion (jobs that want
// finer-grained cancellation watch the context themselves).
var ErrCancelled = errors.New("sched: cancelled before start")

// PanicError is a panic recovered from a job, converted into an ordinary
// error so one crashing job cannot take down the batch (or the daemon
// running it). Value is the recovered value; Stack is the panicking
// goroutine's stack captured at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is available separately so
// callers can attach it to logs or manifests without megabyte errors.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError. Every goroutine
// this package (and internal/service) launches runs its work through
// Protect or an equivalent inline recover — enforced by the atgpu-vet
// gorecover pass.
func Protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Observer receives scheduling lifecycle callbacks, mirroring
// timeline.SetObserver: synchronous, invoked from the goroutine running
// the job, and expected to be cheap (a counter bump, a channel send the
// observer owns). Implementations must be safe for concurrent use —
// with workers > 1, callbacks for different indices arrive
// concurrently. The atgpud telemetry plane uses this to expose live
// worker-pool gauges without the pool knowing anything about metrics.
type Observer interface {
	// JobStart fires just before fn(index) runs on the given worker
	// (workers are numbered 0..workers-1; the sequential path is
	// worker 0).
	JobStart(index, worker int)
	// JobDone fires after fn(index) returns (err as Run would report
	// it, including *PanicError). Indices cancelled before dispatch
	// report JobDone with worker -1 and no preceding JobStart.
	JobDone(index, worker int, err error)
}

// Options configures a batch run.
type Options struct {
	// Workers is the pool size; <= 1 runs sequentially on the calling
	// goroutine.
	Workers int
	// Observer, when non-nil, receives JobStart/JobDone callbacks.
	Observer Observer
}

// Run executes fn(0) … fn(n-1) on up to workers goroutines and returns
// one error slot per index: nil on success, the job's own error, a
// *PanicError if the job panicked, or ErrCancelled if the context was
// done before the index was dispatched.
//
// workers <= 1 runs the jobs sequentially on the calling goroutine
// (still panic-isolated and cancellable between jobs), so a sequential
// batch behaves identically to a parallel one — the property the sweep
// determinism tests pin.
func Run(ctx context.Context, n, workers int, fn func(i int) error) []error {
	return RunOpts(ctx, n, Options{Workers: workers}, fn)
}

// RunOpts is Run with an options struct, the form that carries the
// observer hook. Observer callbacks never change scheduling or results:
// a batch observed and a batch unobserved dispatch identically.
func RunOpts(ctx context.Context, n int, opts Options, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	obs := opts.Observer
	cancelled := func(i int) {
		errs[i] = fmt.Errorf("%w: %v", ErrCancelled, ctx.Err())
		if obs != nil {
			obs.JobDone(i, -1, errs[i])
		}
	}
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				cancelled(i)
				continue
			}
			i := i
			if obs != nil {
				obs.JobStart(i, 0)
			}
			errs[i] = Protect(func() error { return fn(i) })
			if obs != nil {
				obs.JobDone(i, 0, errs[i])
			}
		}
		return errs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			for i := range jobs {
				i := i
				if obs != nil {
					obs.JobStart(i, w)
				}
				// Protect recovers job panics into errs[i]; the worker
				// goroutine itself therefore cannot die mid-batch.
				errs[i] = Protect(func() error { return fn(i) })
				if obs != nil {
					obs.JobDone(i, w, errs[i])
				}
			}
		}()
	}
	i := 0
dispatch:
	for ; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	for ; i < n; i++ {
		cancelled(i)
	}
	wg.Wait()
	return errs
}
