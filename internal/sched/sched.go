// Package sched is the repo's shared work scheduler: a bounded pool that
// runs independent, indexed jobs with panic isolation and cooperative
// cancellation. It is the common core extracted from the experiments
// worker pool (PR 2) and reused by the atgpud service workers — one
// place where the "a crashing job must not crash the process" and "a
// cancelled batch must report exactly which indices never ran" contracts
// live.
//
// Determinism contract: Run dispatches indices 0..n-1 in order and the
// caller assembles results by index, so batch output is independent of
// the worker count and of goroutine scheduling (provided each job is
// self-contained, as the experiments points are). Cancellation is the
// only scheduling-dependent outcome: which indices were already
// dispatched when the context fired depends on timing, which is exactly
// what the caller wants to know when flushing partial results.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrCancelled marks an index whose job was never started because the
// batch context was done before it could be dispatched. Jobs already
// running when the context fires run to completion (jobs that want
// finer-grained cancellation watch the context themselves).
var ErrCancelled = errors.New("sched: cancelled before start")

// PanicError is a panic recovered from a job, converted into an ordinary
// error so one crashing job cannot take down the batch (or the daemon
// running it). Value is the recovered value; Stack is the panicking
// goroutine's stack captured at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is available separately so
// callers can attach it to logs or manifests without megabyte errors.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError. Every goroutine
// this package (and internal/service) launches runs its work through
// Protect or an equivalent inline recover — enforced by the atgpu-vet
// gorecover pass.
func Protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Run executes fn(0) … fn(n-1) on up to workers goroutines and returns
// one error slot per index: nil on success, the job's own error, a
// *PanicError if the job panicked, or ErrCancelled if the context was
// done before the index was dispatched.
//
// workers <= 1 runs the jobs sequentially on the calling goroutine
// (still panic-isolated and cancellable between jobs), so a sequential
// batch behaves identically to a parallel one — the property the sweep
// determinism tests pin.
func Run(ctx context.Context, n, workers int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("%w: %v", ErrCancelled, err)
				continue
			}
			i := i
			errs[i] = Protect(func() error { return fn(i) })
		}
		return errs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				i := i
				// Protect recovers job panics into errs[i]; the worker
				// goroutine itself therefore cannot die mid-batch.
				errs[i] = Protect(func() error { return fn(i) })
			}
		}()
	}
	i := 0
dispatch:
	for ; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	for ; i < n; i++ {
		errs[i] = fmt.Errorf("%w: %v", ErrCancelled, ctx.Err())
	}
	wg.Wait()
	return errs
}
