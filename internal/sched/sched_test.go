package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllSucceed(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var ran atomic.Int64
		errs := Run(context.Background(), 10, workers, func(i int) error {
			ran.Add(1)
			return nil
		})
		if got := ran.Load(); got != 10 {
			t.Fatalf("workers=%d: ran %d jobs, want 10", workers, got)
		}
		for i, err := range errs {
			if err != nil {
				t.Fatalf("workers=%d: errs[%d] = %v, want nil", workers, i, err)
			}
		}
	}
}

func TestRunErrorsStayPerIndex(t *testing.T) {
	errs := Run(context.Background(), 6, 3, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	for i, err := range errs {
		if i%2 == 1 && (err == nil || !strings.Contains(err.Error(), fmt.Sprintf("job %d", i))) {
			t.Errorf("errs[%d] = %v, want job error", i, err)
		}
		if i%2 == 0 && err != nil {
			t.Errorf("errs[%d] = %v, want nil", i, err)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		errs := Run(context.Background(), 4, workers, func(i int) error {
			if i == 2 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(errs[2], &pe) {
			t.Fatalf("workers=%d: errs[2] = %v, want *PanicError", workers, errs[2])
		}
		if pe.Value != "boom" || !strings.Contains(string(pe.Stack), "sched") {
			t.Errorf("workers=%d: panic value %v stack %d bytes", workers, pe.Value, len(pe.Stack))
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Errorf("Error() = %q", pe.Error())
		}
		for _, i := range []int{0, 1, 3} {
			if errs[i] != nil {
				t.Errorf("workers=%d: errs[%d] = %v, want nil (other jobs unaffected)", workers, i, errs[i])
			}
		}
	}
}

func TestRunCancellationMarksUndispatched(t *testing.T) {
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 64)
		errs := Run(ctx, 64, workers, func(i int) error {
			started <- struct{}{}
			if i == 0 {
				cancel()
			}
			// Give the dispatcher time to observe the cancellation so at
			// least the tail of the batch is never dispatched.
			time.Sleep(time.Millisecond)
			return nil
		})
		cancelled := 0
		for _, err := range errs {
			if errors.Is(err, ErrCancelled) {
				cancelled++
			} else if err != nil {
				t.Fatalf("workers=%d: unexpected error %v", workers, err)
			}
		}
		if cancelled == 0 {
			t.Errorf("workers=%d: no index marked ErrCancelled after cancel", workers)
		}
		if got := len(started); got+cancelled != 64 {
			t.Errorf("workers=%d: started %d + cancelled %d != 64", workers, got, cancelled)
		}
	}
}

func TestProtect(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("Protect(nil-returning) = %v", err)
	}
	want := errors.New("plain")
	if err := Protect(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Protect(plain error) = %v", err)
	}
	err := Protect(func() error { panic(42) })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("Protect(panic) = %v", err)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if errs := Run(context.Background(), 0, 4, func(int) error { panic("unreachable") }); len(errs) != 0 {
		t.Fatalf("len(errs) = %d, want 0", len(errs))
	}
}

func TestRunNilContext(t *testing.T) {
	var ctx context.Context // nil: Run must substitute Background
	errs := Run(ctx, 3, 2, func(i int) error { return nil })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
}
