package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// recordingObserver counts callbacks under a lock; callbacks arrive
// concurrently with workers > 1.
type recordingObserver struct {
	mu      sync.Mutex
	started map[int]int // index -> worker
	done    map[int]error
	doneW   map[int]int
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{
		started: make(map[int]int),
		done:    make(map[int]error),
		doneW:   make(map[int]int),
	}
}

func (o *recordingObserver) JobStart(index, worker int) {
	o.mu.Lock()
	o.started[index] = worker
	o.mu.Unlock()
}

func (o *recordingObserver) JobDone(index, worker int, err error) {
	o.mu.Lock()
	o.done[index] = err
	o.doneW[index] = worker
	o.mu.Unlock()
}

func TestObserverSeesEveryJob(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		o := newRecordingObserver()
		errs := RunOpts(context.Background(), 16, Options{Workers: workers, Observer: o}, func(i int) error {
			switch i % 3 {
			case 1:
				return boom
			case 2:
				panic("job panic")
			}
			return nil
		})
		if len(o.started) != 16 || len(o.done) != 16 {
			t.Fatalf("workers=%d: started=%d done=%d, want 16 each", workers, len(o.started), len(o.done))
		}
		for i := 0; i < 16; i++ {
			if o.done[i] == nil != (errs[i] == nil) {
				t.Errorf("workers=%d: observer err for %d = %v, Run reported %v", workers, i, o.done[i], errs[i])
			}
			if w := o.doneW[i]; w < 0 || w >= workers+1 {
				t.Errorf("workers=%d: job %d done on worker %d", workers, i, w)
			}
			switch i % 3 {
			case 1:
				if !errors.Is(o.done[i], boom) {
					t.Errorf("job %d: observer err = %v, want boom", i, o.done[i])
				}
			case 2:
				var pe *PanicError
				if !errors.As(o.done[i], &pe) {
					t.Errorf("job %d: observer err = %v, want PanicError", i, o.done[i])
				}
			}
		}
	}
}

func TestObserverCancelledJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := newRecordingObserver()
	release := make(chan struct{})
	first := true
	errs := RunOpts(ctx, 8, Options{Workers: 1, Observer: o}, func(i int) error {
		if first {
			first = false
			cancel()
			close(release)
		}
		<-release
		return nil
	})
	cancelledJobs := 0
	for i, err := range errs {
		if errors.Is(err, ErrCancelled) {
			cancelledJobs++
			if _, ok := o.started[i]; ok {
				t.Errorf("cancelled job %d reported JobStart", i)
			}
			if w := o.doneW[i]; w != -1 {
				t.Errorf("cancelled job %d reported worker %d, want -1", i, w)
			}
			if !errors.Is(o.done[i], ErrCancelled) {
				t.Errorf("cancelled job %d: observer err = %v", i, o.done[i])
			}
		}
	}
	if cancelledJobs == 0 {
		t.Fatal("no job was cancelled")
	}
	if len(o.done) != 8 {
		t.Fatalf("JobDone fired %d times, want 8 (every index, cancelled or not)", len(o.done))
	}
}

// TestObserverDoesNotChangeResults pins the hook's operational-only
// contract: the errs slice is identical with and without an observer.
func TestObserverDoesNotChangeResults(t *testing.T) {
	run := func(o Observer) []error {
		return RunOpts(context.Background(), 12, Options{Workers: 3, Observer: o}, func(i int) error {
			if i%4 == 2 {
				return errors.New("expected")
			}
			return nil
		})
	}
	plain := run(nil)
	observed := run(newRecordingObserver())
	for i := range plain {
		if (plain[i] == nil) != (observed[i] == nil) {
			t.Fatalf("index %d: plain=%v observed=%v", i, plain[i], observed[i])
		}
	}
}
