// Package mem implements the two memory spaces of the ATGPU model: global
// memory divided into blocks of b words (accessed by whole-block
// transactions, coalesced when a warp's addresses fall in one block), and
// per-multiprocessor shared memory divided into b banks (serialised on bank
// conflicts).
//
// Both structures separate state (the word arrays) from access-pattern
// analysis (transaction and conflict counting), so the simulator can charge
// latencies and the analyser can audit the model's qᵢ metric from the same
// primitives.
package mem

import (
	"errors"
	"fmt"
)

// Word matches kernel.Word; duplicated here to keep mem dependency-free.
type Word = int64

// Global memory: "The GPU has off-chip global memory split into equal sized
// memory blocks. Global memory is accessible by all cores on the GPU and by
// the CPU." Its size G is a hard constraint the ATGPU model adds over
// SWGPU/AGPU: an algorithm whose footprint exceeds G cannot run.
type Global struct {
	words     []Word
	blockSize int
}

// Errors returned by memory operations.
var (
	ErrOutOfRange    = errors.New("mem: address out of range")
	ErrBadBlockSize  = errors.New("mem: block size must be positive")
	ErrBadSize       = errors.New("mem: size must be non-negative")
	ErrSizeExceeded  = errors.New("mem: allocation exceeds capacity")
	ErrMisalignedLen = errors.New("mem: length not a multiple of block size")
)

// NewGlobal creates a global memory of size words split into blocks of
// blockSize words (the model's b).
func NewGlobal(size, blockSize int) (*Global, error) {
	if blockSize <= 0 {
		return nil, ErrBadBlockSize
	}
	if size < 0 {
		return nil, ErrBadSize
	}
	return &Global{words: make([]Word, size), blockSize: blockSize}, nil
}

// Size returns G, the capacity in words.
func (g *Global) Size() int { return len(g.words) }

// BlockSize returns the words per memory block.
func (g *Global) BlockSize() int { return g.blockSize }

// NumBlocks returns the number of whole blocks (the tail partial block, if
// any, counts as one more addressable block).
func (g *Global) NumBlocks() int {
	return (len(g.words) + g.blockSize - 1) / g.blockSize
}

// Block returns the block index containing address a.
func (g *Global) Block(a int) int { return a / g.blockSize }

// InRange reports whether address a is valid.
func (g *Global) InRange(a int) bool { return a >= 0 && a < len(g.words) }

// Load returns the word at address a.
func (g *Global) Load(a int) (Word, error) {
	if !g.InRange(a) {
		return 0, fmt.Errorf("%w: global load at %d (G=%d)", ErrOutOfRange, a, len(g.words))
	}
	return g.words[a], nil
}

// Store writes v at address a.
func (g *Global) Store(a int, v Word) error {
	if !g.InRange(a) {
		return fmt.Errorf("%w: global store at %d (G=%d)", ErrOutOfRange, a, len(g.words))
	}
	g.words[a] = v
	return nil
}

// CheckWrite validates that a length-word write at offset stays in range,
// without performing it. The transfer engine pre-flights transactions with
// this so range errors surface before any fault/retry machinery engages.
func (g *Global) CheckWrite(offset, length int) error {
	if length < 0 || offset < 0 || offset+length > len(g.words) {
		return fmt.Errorf("%w: write [%d,%d) into G=%d", ErrOutOfRange, offset, offset+length, len(g.words))
	}
	return nil
}

// CheckRead validates that a length-word read at offset stays in range,
// without performing it.
func (g *Global) CheckRead(offset, length int) error {
	if length < 0 || offset < 0 || offset+length > len(g.words) {
		return fmt.Errorf("%w: read [%d,%d) from G=%d", ErrOutOfRange, offset, offset+length, len(g.words))
	}
	return nil
}

// WriteSlice copies src into global memory starting at offset. It is the
// device-side landing of an inward host transfer.
func (g *Global) WriteSlice(offset int, src []Word) error {
	if err := g.CheckWrite(offset, len(src)); err != nil {
		return err
	}
	copy(g.words[offset:], src)
	return nil
}

// ReadSlice copies length words starting at offset into a fresh slice. It is
// the device-side source of an outward host transfer.
func (g *Global) ReadSlice(offset, length int) ([]Word, error) {
	if err := g.CheckRead(offset, length); err != nil {
		return nil, err
	}
	out := make([]Word, length)
	copy(out, g.words[offset:offset+length])
	return out, nil
}

// Fill sets length words starting at offset to v.
func (g *Global) Fill(offset, length int, v Word) error {
	if length < 0 || offset < 0 || offset+length > len(g.words) {
		return fmt.Errorf("%w: fill [%d,%d) in G=%d", ErrOutOfRange, offset, offset+length, len(g.words))
	}
	for i := offset; i < offset+length; i++ {
		g.words[i] = v
	}
	return nil
}

// Raw exposes the backing array for zero-copy inspection by tests and the
// functional emulator. Callers must not resize it.
func (g *Global) Raw() []Word { return g.words }

// Arena is a bump allocator over a Global memory, standing in for
// cudaMalloc: algorithms allocate named regions and the G constraint is
// enforced at allocation time, which is precisely where the ATGPU model
// rejects algorithms that exceed global capacity.
type Arena struct {
	g    *Global
	next int
}

// NewArena creates an allocator over g starting at offset 0.
func NewArena(g *Global) *Arena { return &Arena{g: g} }

// Alloc reserves size words and returns the base address.
func (a *Arena) Alloc(size int) (int, error) {
	if size < 0 {
		return 0, ErrBadSize
	}
	if a.next+size > a.g.Size() {
		return 0, fmt.Errorf("%w: want %d words, %d free of G=%d",
			ErrSizeExceeded, size, a.g.Size()-a.next, a.g.Size())
	}
	base := a.next
	a.next += size
	return base, nil
}

// AllocAligned reserves size words aligned to a block boundary, the natural
// layout for coalesced kernels.
func (a *Arena) AllocAligned(size int) (int, error) {
	bs := a.g.BlockSize()
	if rem := a.next % bs; rem != 0 {
		pad := bs - rem
		if _, err := a.Alloc(pad); err != nil {
			return 0, err
		}
	}
	return a.Alloc(size)
}

// Used returns the words allocated so far — the model's "global memory
// space used" metric for the current round structure.
func (a *Arena) Used() int { return a.next }

// Free returns the remaining capacity in words.
func (a *Arena) Free() int { return a.g.Size() - a.next }

// Reset releases all allocations (the σ-cost "de-allocating and
// reallocating of data structures" between rounds).
func (a *Arena) Reset() { a.next = 0 }
