package mem

// Word-level checksums for end-to-end transfer verification: the transfer
// engine hashes a slice on the sending side and re-hashes the landed data
// on the receiving side, so injected corruption is detected and retried
// rather than silently propagated into kernel results.

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Checksum returns the FNV-1a 64-bit hash of ws, folding each word in
// byte-wise little-endian order. The empty slice hashes to the FNV offset
// basis, so zero-length transfers verify trivially.
func Checksum(ws []Word) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range ws {
		u := uint64(w)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (u >> shift) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}

// ChecksumRange hashes length words of global memory starting at offset,
// the device-side half of a transfer verification.
func (g *Global) ChecksumRange(offset, length int) (uint64, error) {
	if err := g.CheckRead(offset, length); err != nil {
		return 0, err
	}
	return Checksum(g.words[offset : offset+length]), nil
}
