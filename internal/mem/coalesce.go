package mem

// Coalescing analysis. "In a global memory access instruction, if Ci
// requests words within the same memory block, instructions coalesce and
// complete as a single transaction. If requested words are in l separate
// memory blocks, l separate transactions occur."
//
// The warp-wide address vector plus active mask therefore maps to a set of
// distinct block indices; the cardinality of that set is the transaction
// count l, which the model's I/O metric qᵢ accumulates.

// Transactions returns the number of distinct memory blocks touched by the
// active lanes' addresses, i.e. the l separate transactions of a warp-wide
// global access. Inactive lanes (mask bit clear) issue no request. addrs
// and the mask are indexed by lane.
//
// blockSize must be positive; addrs for active lanes must be non-negative
// (validity against G is the caller's concern — the simulator checks range
// before counting).
func Transactions(addrs []int, active []bool, blockSize int) int {
	return len(DistinctBlocks(addrs, active, blockSize))
}

// DistinctBlocks returns the sorted-by-first-appearance list of distinct
// block indices requested by active lanes.
func DistinctBlocks(addrs []int, active []bool, blockSize int) []int {
	// Warps are small (b lanes, typically 32); a linear scan over the
	// already-collected blocks beats map allocation on this size.
	blocks := make([]int, 0, 4)
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		blk := a / blockSize
		found := false
		for _, bq := range blocks {
			if bq == blk {
				found = true
				break
			}
		}
		if !found {
			blocks = append(blocks, blk)
		}
	}
	return blocks
}

// IsCoalesced reports whether the active lanes' addresses fall within a
// single memory block — the access pattern the paper calls coalesced.
// A fully inactive access is trivially coalesced (zero transactions).
func IsCoalesced(addrs []int, active []bool, blockSize int) bool {
	return Transactions(addrs, active, blockSize) <= 1
}

// AccessSummary describes one warp-wide global memory access for tracing
// and ablation studies.
type AccessSummary struct {
	// Lanes is the number of active lanes that issued a request.
	Lanes int
	// Transactions is l, the distinct blocks fetched.
	Transactions int
	// Coalesced is Transactions <= 1.
	Coalesced bool
}

// Summarise computes the AccessSummary for a warp access.
func Summarise(addrs []int, active []bool, blockSize int) AccessSummary {
	lanes := 0
	for i := range addrs {
		if i >= len(active) || active[i] {
			lanes++
		}
	}
	t := Transactions(addrs, active, blockSize)
	return AccessSummary{Lanes: lanes, Transactions: t, Coalesced: t <= 1}
}
