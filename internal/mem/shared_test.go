package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewSharedValidation(t *testing.T) {
	if _, err := NewShared(16, 0); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("zero banks: %v", err)
	}
	if _, err := NewShared(-1, 4); !errors.Is(err, ErrBadSize) {
		t.Errorf("negative size: %v", err)
	}
	s, err := NewShared(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 16 || s.Banks() != 4 {
		t.Fatalf("geometry wrong: %d/%d", s.Size(), s.Banks())
	}
}

func TestSharedLoadStore(t *testing.T) {
	s, _ := NewShared(8, 4)
	if err := s.Store(5, 11); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load(5)
	if err != nil || v != 11 {
		t.Fatalf("Load(5) = %d, %v", v, err)
	}
	if _, err := s.Load(8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load(8): %v", err)
	}
	if err := s.Store(-1, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Store(-1): %v", err)
	}
}

func TestSharedZero(t *testing.T) {
	s, _ := NewShared(8, 4)
	for i := 0; i < 8; i++ {
		if err := s.Store(i, Word(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Zero()
	for i := 0; i < 8; i++ {
		if v, _ := s.Load(i); v != 0 {
			t.Fatalf("after Zero, [%d] = %d", i, v)
		}
	}
}

func TestBankMapping(t *testing.T) {
	// "b successive words reside in distinct banks": word w → bank w mod b.
	s, _ := NewShared(16, 4)
	for a := 0; a < 16; a++ {
		if got, want := s.Bank(a), a%4; got != want {
			t.Errorf("Bank(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestConflictDegree(t *testing.T) {
	s, _ := NewShared(64, 4)
	act := allActive(4)

	// Successive words: conflict free.
	if d := s.ConflictDegree([]int{0, 1, 2, 3}, act); d != 1 {
		t.Errorf("successive words degree = %d, want 1", d)
	}
	// Same bank, different words: full serialisation.
	if d := s.ConflictDegree([]int{0, 4, 8, 12}, act); d != 4 {
		t.Errorf("same-bank degree = %d, want 4", d)
	}
	// Two-way conflict.
	if d := s.ConflictDegree([]int{0, 4, 1, 2}, act); d != 2 {
		t.Errorf("two-way degree = %d, want 2", d)
	}
	// Same word everywhere: no broadcast in the plain model.
	if d := s.ConflictDegree([]int{5, 5, 5, 5}, act); d != 4 {
		t.Errorf("same-word plain degree = %d, want 4", d)
	}
	// Masked lanes do not conflict.
	if d := s.ConflictDegree([]int{0, 4, 8, 12}, []bool{true, false, false, false}); d != 1 {
		t.Errorf("masked degree = %d, want 1", d)
	}
	// No active lanes: degree 0.
	if d := s.ConflictDegree([]int{0, 4, 8, 12}, make([]bool, 4)); d != 0 {
		t.Errorf("inactive degree = %d, want 0", d)
	}
}

func TestConflictDegreeBroadcast(t *testing.T) {
	s, _ := NewShared(64, 4)
	act := allActive(4)
	// Same word everywhere: broadcast resolves in one step.
	if d := s.ConflictDegreeBroadcast([]int{5, 5, 5, 5}, act); d != 1 {
		t.Errorf("broadcast same-word degree = %d, want 1", d)
	}
	// Distinct words in one bank still serialise.
	if d := s.ConflictDegreeBroadcast([]int{0, 4, 8, 12}, act); d != 4 {
		t.Errorf("broadcast same-bank degree = %d, want 4", d)
	}
	// Mixed: two lanes on word 0, two lanes on word 4 (same bank 0):
	// two distinct words in bank 0 → degree 2.
	if d := s.ConflictDegreeBroadcast([]int{0, 0, 4, 4}, act); d != 2 {
		t.Errorf("broadcast mixed degree = %d, want 2", d)
	}
}

// Property: broadcast degree never exceeds plain degree, both are bounded
// by the active lane count, and plain degree of distinct-bank accesses is 1.
func TestConflictDegreeProperties(t *testing.T) {
	s, _ := NewShared(1024, 8)
	f := func(raw [8]uint16, mask uint8) bool {
		addrs := make([]int, 8)
		active := make([]bool, 8)
		n := 0
		for i := range addrs {
			addrs[i] = int(raw[i]) % 1024
			active[i] = mask&(1<<i) != 0
			if active[i] {
				n++
			}
		}
		plain := s.ConflictDegree(addrs, active)
		bc := s.ConflictDegreeBroadcast(addrs, active)
		if bc > plain || plain > n || bc < 0 {
			return false
		}
		if (plain == 0) != (n == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}

	// Lane i accessing bank i is always conflict-free.
	g := func(blockOffsets [8]uint8) bool {
		addrs := make([]int, 8)
		for i := range addrs {
			addrs[i] = int(blockOffsets[i]%16)*8 + i
		}
		return s.ConflictDegree(addrs, allActive(8)) == 1
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
