package mem

import (
	"errors"
	"testing"
)

func TestNewGlobalValidation(t *testing.T) {
	if _, err := NewGlobal(16, 0); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("zero block size: %v", err)
	}
	if _, err := NewGlobal(-1, 4); !errors.Is(err, ErrBadSize) {
		t.Errorf("negative size: %v", err)
	}
	g, err := NewGlobal(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 16 || g.BlockSize() != 4 || g.NumBlocks() != 4 {
		t.Fatalf("geometry wrong: size=%d bs=%d blocks=%d", g.Size(), g.BlockSize(), g.NumBlocks())
	}
}

func TestGlobalNumBlocksPartialTail(t *testing.T) {
	g, err := NewGlobal(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3 (two full + one partial)", g.NumBlocks())
	}
}

func TestGlobalLoadStore(t *testing.T) {
	g, _ := NewGlobal(8, 4)
	if err := g.Store(3, 42); err != nil {
		t.Fatal(err)
	}
	v, err := g.Load(3)
	if err != nil || v != 42 {
		t.Fatalf("Load(3) = %d, %v", v, err)
	}
	if _, err := g.Load(8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load(8): %v", err)
	}
	if _, err := g.Load(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load(-1): %v", err)
	}
	if err := g.Store(8, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Store(8): %v", err)
	}
}

func TestGlobalBlockMapping(t *testing.T) {
	g, _ := NewGlobal(16, 4)
	for a := 0; a < 16; a++ {
		if got, want := g.Block(a), a/4; got != want {
			t.Errorf("Block(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestGlobalSlices(t *testing.T) {
	g, _ := NewGlobal(8, 4)
	if err := g.WriteSlice(2, []Word{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadSlice(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []Word{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("ReadSlice[%d] = %d, want %d", i, got[i], want)
		}
	}
	if err := g.WriteSlice(6, []Word{1, 2, 3}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow write: %v", err)
	}
	if _, err := g.ReadSlice(6, 3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow read: %v", err)
	}
	if _, err := g.ReadSlice(0, -1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative length read: %v", err)
	}
	// ReadSlice must copy, not alias.
	got[0] = 99
	v, _ := g.Load(2)
	if v != 1 {
		t.Error("ReadSlice aliases device memory")
	}
}

func TestGlobalFill(t *testing.T) {
	g, _ := NewGlobal(8, 4)
	if err := g.Fill(2, 4, 7); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		v, _ := g.Load(a)
		want := Word(0)
		if a >= 2 && a < 6 {
			want = 7
		}
		if v != want {
			t.Fatalf("after Fill, [%d] = %d, want %d", a, v, want)
		}
	}
	if err := g.Fill(6, 4, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow fill: %v", err)
	}
}

func TestArena(t *testing.T) {
	g, _ := NewGlobal(100, 4)
	a := NewArena(g)
	p1, err := a.Alloc(10)
	if err != nil || p1 != 0 {
		t.Fatalf("first alloc = %d, %v", p1, err)
	}
	p2, err := a.Alloc(5)
	if err != nil || p2 != 10 {
		t.Fatalf("second alloc = %d, %v", p2, err)
	}
	if a.Used() != 15 || a.Free() != 85 {
		t.Fatalf("Used=%d Free=%d", a.Used(), a.Free())
	}
	if _, err := a.Alloc(86); !errors.Is(err, ErrSizeExceeded) {
		t.Errorf("over-alloc: %v", err)
	}
	if _, err := a.Alloc(-1); !errors.Is(err, ErrBadSize) {
		t.Errorf("negative alloc: %v", err)
	}
	a.Reset()
	if a.Used() != 0 {
		t.Fatal("Reset should clear usage")
	}
}

func TestArenaAligned(t *testing.T) {
	g, _ := NewGlobal(100, 4)
	a := NewArena(g)
	if _, err := a.Alloc(3); err != nil {
		t.Fatal(err)
	}
	p, err := a.AllocAligned(8)
	if err != nil {
		t.Fatal(err)
	}
	if p%4 != 0 {
		t.Fatalf("aligned alloc at %d, want multiple of 4", p)
	}
	if p != 4 {
		t.Fatalf("aligned alloc at %d, want 4 (padding over 3)", p)
	}
	// Already aligned: no padding.
	p2, err := a.AllocAligned(4)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != 12 {
		t.Fatalf("second aligned alloc at %d, want 12", p2)
	}
}

func TestArenaExactFit(t *testing.T) {
	g, _ := NewGlobal(16, 4)
	a := NewArena(g)
	if _, err := a.Alloc(16); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := a.Alloc(1); !errors.Is(err, ErrSizeExceeded) {
		t.Errorf("alloc past capacity: %v", err)
	}
}
