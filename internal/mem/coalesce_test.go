package mem

import (
	"testing"
	"testing/quick"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestTransactionsCoalesced(t *testing.T) {
	// A warp reading consecutive addresses within one block coalesces.
	addrs := []int{0, 1, 2, 3}
	if got := Transactions(addrs, allActive(4), 4); got != 1 {
		t.Fatalf("coalesced access = %d transactions, want 1", got)
	}
	if !IsCoalesced(addrs, allActive(4), 4) {
		t.Fatal("IsCoalesced = false for same-block access")
	}
}

func TestTransactionsStrided(t *testing.T) {
	// Stride-b access touches one block per lane: worst case l = lanes.
	addrs := []int{0, 4, 8, 12}
	if got := Transactions(addrs, allActive(4), 4); got != 4 {
		t.Fatalf("strided access = %d transactions, want 4", got)
	}
	if IsCoalesced(addrs, allActive(4), 4) {
		t.Fatal("IsCoalesced = true for strided access")
	}
}

func TestTransactionsStraddle(t *testing.T) {
	// Consecutive addresses straddling a block boundary take 2.
	addrs := []int{2, 3, 4, 5}
	if got := Transactions(addrs, allActive(4), 4); got != 2 {
		t.Fatalf("straddling access = %d transactions, want 2", got)
	}
}

func TestTransactionsMasked(t *testing.T) {
	addrs := []int{0, 100, 200, 300}
	active := []bool{true, false, false, false}
	if got := Transactions(addrs, active, 4); got != 1 {
		t.Fatalf("masked access = %d transactions, want 1", got)
	}
	if got := Transactions(addrs, make([]bool, 4), 4); got != 0 {
		t.Fatalf("fully masked access = %d transactions, want 0", got)
	}
}

func TestDistinctBlocksOrder(t *testing.T) {
	addrs := []int{9, 1, 9, 2}
	blocks := DistinctBlocks(addrs, allActive(4), 4)
	if len(blocks) != 2 || blocks[0] != 2 || blocks[1] != 0 {
		t.Fatalf("DistinctBlocks = %v, want [2 0] (first-appearance order)", blocks)
	}
}

func TestSummarise(t *testing.T) {
	addrs := []int{0, 1, 8, 9}
	s := Summarise(addrs, allActive(4), 4)
	if s.Lanes != 4 || s.Transactions != 2 || s.Coalesced {
		t.Fatalf("Summarise = %+v", s)
	}
	s = Summarise([]int{3, 3, 3, 3}, allActive(4), 4)
	if !s.Coalesced || s.Transactions != 1 {
		t.Fatalf("uniform access Summarise = %+v", s)
	}
}

// Property: 0 ≤ transactions ≤ active lanes, and transactions == 0 iff no
// lane is active. Also: transactions is invariant under permuting lanes.
func TestTransactionsProperties(t *testing.T) {
	type input struct {
		Addrs [8]uint16
		Mask  uint8
	}
	f := func(in input) bool {
		addrs := make([]int, 8)
		active := make([]bool, 8)
		nActive := 0
		for i := range addrs {
			addrs[i] = int(in.Addrs[i])
			active[i] = in.Mask&(1<<i) != 0
			if active[i] {
				nActive++
			}
		}
		tx := Transactions(addrs, active, 4)
		if tx < 0 || tx > nActive {
			return false
		}
		if (tx == 0) != (nActive == 0) {
			return false
		}
		// Permutation invariance: reverse the lanes.
		rAddrs := make([]int, 8)
		rActive := make([]bool, 8)
		for i := range addrs {
			rAddrs[i] = addrs[7-i]
			rActive[i] = active[7-i]
		}
		return Transactions(rAddrs, rActive, 4) == tx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: all addresses within a single block are always coalesced.
func TestCoalescedWithinBlockProperty(t *testing.T) {
	f := func(block uint16, offsets [8]uint8) bool {
		addrs := make([]int, 8)
		for i := range addrs {
			addrs[i] = int(block)*32 + int(offsets[i]%32)
		}
		return Transactions(addrs, allActive(8), 32) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
