package mem

import "fmt"

// Shared is the per-multiprocessor shared memory: M words split into b
// banks "such that b successive words reside in distinct banks" — word w
// lives in bank w mod b. Accesses by the b cores complete in constant time
// when the requested words lie in distinct banks; otherwise a bank conflict
// serialises the requests.
//
// The ATGPU model *assumes* bank conflicts do not occur ("as these are
// difficult to analyse"), but the simulated device still detects and can
// serialise them, both to keep the substrate honest and to support the
// bank-conflict ablation bench.
type Shared struct {
	words []Word
	banks int
}

// NewShared creates a shared memory of size words with banks banks.
func NewShared(size, banks int) (*Shared, error) {
	if banks <= 0 {
		return nil, ErrBadBlockSize
	}
	if size < 0 {
		return nil, ErrBadSize
	}
	return &Shared{words: make([]Word, size), banks: banks}, nil
}

// Size returns M, the capacity in words.
func (s *Shared) Size() int { return len(s.words) }

// Banks returns b, the number of banks.
func (s *Shared) Banks() int { return s.banks }

// Bank returns the bank holding address a.
func (s *Shared) Bank(a int) int { return a % s.banks }

// InRange reports whether address a is valid.
func (s *Shared) InRange(a int) bool { return a >= 0 && a < len(s.words) }

// Load returns the word at address a.
func (s *Shared) Load(a int) (Word, error) {
	if !s.InRange(a) {
		return 0, fmt.Errorf("%w: shared load at %d (M=%d)", ErrOutOfRange, a, len(s.words))
	}
	return s.words[a], nil
}

// Store writes v at address a.
func (s *Shared) Store(a int, v Word) error {
	if !s.InRange(a) {
		return fmt.Errorf("%w: shared store at %d (M=%d)", ErrOutOfRange, a, len(s.words))
	}
	s.words[a] = v
	return nil
}

// Zero clears the whole shared memory, as happens when a fresh block is
// scheduled onto the multiprocessor.
func (s *Shared) Zero() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Raw exposes the backing array for tests.
func (s *Shared) Raw() []Word { return s.words }

// ConflictDegree returns the maximum number of active lanes whose addresses
// map to the same bank — the serialisation factor of the access. A
// conflict-free access has degree <= 1 (degree 0 when no lane is active).
//
// Note the hardware subtlety preserved here: distinct lanes reading the
// *same address* still map to the same bank and are counted as conflicting
// by this simple model (no broadcast optimisation); kernels written for the
// ATGPU model are expected to be conflict-free by construction.
func (s *Shared) ConflictDegree(addrs []int, active []bool) int {
	counts := make([]int, s.banks)
	max := 0
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		bk := a % s.banks
		counts[bk]++
		if counts[bk] > max {
			max = counts[bk]
		}
	}
	return max
}

// ConflictDegreeBroadcast is ConflictDegree with the hardware broadcast
// optimisation: lanes reading the same word count once. Used by the
// bank-conflict ablation.
func (s *Shared) ConflictDegreeBroadcast(addrs []int, active []bool) int {
	perBank := make(map[int]map[int]bool, s.banks)
	max := 0
	for lane, a := range addrs {
		if lane < len(active) && !active[lane] {
			continue
		}
		bk := a % s.banks
		words := perBank[bk]
		if words == nil {
			words = make(map[int]bool)
			perBank[bk] = words
		}
		words[a] = true
		if len(words) > max {
			max = len(words)
		}
	}
	return max
}
