package mem

import "testing"

// BenchmarkTransactions measures coalescing analysis over a 32-lane warp,
// the per-access hot path of the simulator's global memory model.
func BenchmarkTransactions(b *testing.B) {
	run := func(b *testing.B, stride int) {
		addrs := make([]int, 32)
		active := make([]bool, 32)
		for i := range addrs {
			addrs[i] = i * stride
			active[i] = true
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if Transactions(addrs, active, 32) == 0 {
				b.Fatal("no transactions")
			}
		}
	}
	b.Run("coalesced", func(b *testing.B) { run(b, 1) })
	b.Run("scattered", func(b *testing.B) { run(b, 32) })
}

// BenchmarkConflictDegree measures bank-conflict analysis.
func BenchmarkConflictDegree(b *testing.B) {
	s, err := NewShared(1024, 32)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]int, 32)
	active := make([]bool, 32)
	for i := range addrs {
		addrs[i] = i * 32 // all in bank 0: worst case
		active[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.ConflictDegree(addrs, active) != 32 {
			b.Fatal("wrong degree")
		}
	}
}

// BenchmarkGlobalSlice measures bulk host↔device copies.
func BenchmarkGlobalSlice(b *testing.B) {
	g, err := NewGlobal(1<<20, 32)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Word, 1<<16)
	b.SetBytes(int64(len(buf) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteSlice(0, buf); err != nil {
			b.Fatal(err)
		}
		if _, err := g.ReadSlice(0, len(buf)); err != nil {
			b.Fatal(err)
		}
	}
}
