package mem

import (
	"errors"
	"testing"
)

func TestChecksumBasics(t *testing.T) {
	// Deterministic and sensitive to every word and to ordering.
	a := []Word{1, 2, 3, 4}
	if Checksum(a) != Checksum([]Word{1, 2, 3, 4}) {
		t.Fatal("checksum not deterministic")
	}
	if Checksum(a) == Checksum([]Word{1, 2, 3, 5}) {
		t.Fatal("single-word change not detected")
	}
	if Checksum(a) == Checksum([]Word{4, 3, 2, 1}) {
		t.Fatal("reordering not detected")
	}
	if Checksum(nil) != Checksum([]Word{}) {
		t.Fatal("empty checksums differ")
	}
	// A single-bit flip — the corruption the fault injector applies —
	// must change the hash.
	b := []Word{1 << 40, -7, 0}
	c := []Word{1 << 40, -7 ^ 1, 0}
	if Checksum(b) == Checksum(c) {
		t.Fatal("bit flip not detected")
	}
}

func TestChecksumRange(t *testing.T) {
	g, err := NewGlobal(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := []Word{9, 8, 7, 6}
	if err := g.WriteSlice(16, src); err != nil {
		t.Fatal(err)
	}
	sum, err := g.ChecksumRange(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum != Checksum(src) {
		t.Fatalf("device checksum %x != host checksum %x", sum, Checksum(src))
	}
	if _, err := g.ChecksumRange(62, 4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overflow range: %v", err)
	}
	if _, err := g.ChecksumRange(0, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative length: %v", err)
	}
}

func TestCheckReadWrite(t *testing.T) {
	g, err := NewGlobal(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWrite(0, 32); err != nil {
		t.Errorf("full-capacity write rejected: %v", err)
	}
	if err := g.CheckWrite(1, 32); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow write accepted: %v", err)
	}
	if err := g.CheckWrite(-1, 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset write accepted: %v", err)
	}
	if err := g.CheckRead(28, 4); err != nil {
		t.Errorf("tail read rejected: %v", err)
	}
	if err := g.CheckRead(28, 5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow read accepted: %v", err)
	}
}
