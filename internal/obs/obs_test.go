package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderAndRegistryAreNoOps(t *testing.T) {
	var r *Recorder
	var m *Registry
	r.Span("p", "t", "s", 0, time.Second)
	r.Instant("p", "t", "i", 0)
	r.Merge(NewRecorder(0))
	if r.Enabled() || r.Len() != 0 || r.Spans() != nil || r.Instants() != nil {
		t.Fatal("nil recorder should be inert")
	}
	m.Add("c", 1)
	m.AddDuration("d", time.Second)
	m.Set("g", 1)
	m.Observe("h", time.Second)
	if m.Enabled() || !m.Snapshot().Empty() {
		t.Fatal("nil registry should be inert")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("nil trace write: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace has %d events", len(doc.TraceEvents))
	}
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	var r *Recorder
	var m *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Span("host", "h2d", "copy", 0, time.Microsecond)
		r.Instant("faults", "engine", "corrupt", 0)
		m.Add("atgpu_transfer_in_words_total", 64)
		m.Observe("atgpu_transfer_in_ns", time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %v times per run", allocs)
	}
}

func TestRecorderTruncation(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Span("p", "t", "s", 0, time.Second)
	}
	if !r.Truncated {
		t.Fatal("expected Truncated after exceeding MaxEvents")
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// Truncation is sticky across merges in both directions.
	dst := NewRecorder(0)
	dst.Merge(r)
	if !dst.Truncated {
		t.Fatal("merge should propagate truncation")
	}
}

func TestMergeTaggedPrefixesProc(t *testing.T) {
	point := NewRecorder(0)
	point.Span("host", "h2d", "copy", 0, time.Second)
	point.Instant("faults", "engine", "corrupt", time.Second)
	all := NewRecorder(0)
	all.MergeTagged(point, "vecadd n=1024")
	if got := all.Spans()[0].Proc; got != "vecadd n=1024/host" {
		t.Fatalf("span proc = %q", got)
	}
	if got := all.Instants()[0].Proc; got != "vecadd n=1024/faults" {
		t.Fatalf("instant proc = %q", got)
	}
}

func TestSnapshotMergeIsOrderIndependent(t *testing.T) {
	mk := func(c int64, d time.Duration) Snapshot {
		m := NewRegistry()
		m.Add("atgpu_sweep_points_total", c)
		m.AddDuration("atgpu_host_kernel_busy_ns_total", d)
		m.Observe("atgpu_transfer_in_ns", d)
		return m.Snapshot()
	}
	a, b, c := mk(1, time.Microsecond), mk(2, 3*time.Microsecond), mk(5, 40*time.Nanosecond)

	var fwd Snapshot
	fwd.Merge(a)
	fwd.Merge(b)
	fwd.Merge(c)
	var rev Snapshot
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)

	var bufF, bufR bytes.Buffer
	if err := fwd.WriteJSON(&bufF); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteJSON(&bufR); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufF.Bytes(), bufR.Bytes()) {
		t.Fatalf("merge order changed serialised snapshot:\n%s\nvs\n%s", bufF.String(), bufR.String())
	}
	if got := fwd.Counters["atgpu_sweep_points_total"]; got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	h := fwd.Histograms["atgpu_transfer_in_ns"]
	if h.Count != 3 || h.Sum != (time.Microsecond+3*time.Microsecond+40*time.Nanosecond).Nanoseconds() {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestPrometheusExposition(t *testing.T) {
	m := NewRegistry()
	m.Add("atgpu_faults_corrupt_total", 3)
	m.Set("atgpu_pipeline_saving_ratio", 0.296)
	m.Observe("atgpu_transfer_in_ns", 100*time.Nanosecond)
	m.Observe("atgpu_transfer_in_ns", 100*time.Nanosecond)
	var buf bytes.Buffer
	if err := m.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE atgpu_faults_corrupt_total counter",
		"atgpu_faults_corrupt_total 3",
		"# TYPE atgpu_pipeline_saving_ratio gauge",
		"atgpu_pipeline_saving_ratio 0.296",
		"# TYPE atgpu_transfer_in_ns histogram",
		"atgpu_transfer_in_ns_bucket{le=\"127\"} 2",
		"atgpu_transfer_in_ns_bucket{le=\"+Inf\"} 2",
		"atgpu_transfer_in_ns_sum 200",
		"atgpu_transfer_in_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// 100ns has bit length 7, so the le="63" cumulative count is 0.
	if !strings.Contains(out, "atgpu_transfer_in_ns_bucket{le=\"63\"} 0") {
		t.Fatalf("bucket below observation should be empty:\n%s", out)
	}
}

func TestWriteTraceDeterministicAndWellFormed(t *testing.T) {
	record := func() *Recorder {
		r := NewRecorder(0)
		r.Span("streams", "stream 1", "kernel vecadd", 2*time.Microsecond, 5*time.Microsecond,
			Arg{"blocks", "4"})
		r.Span("host", "h2d", "in vecadd.x", 0, 2*time.Microsecond)
		r.Instant("transfer", "engine", "retry", time.Microsecond, Arg{"attempt", "2"})
		return r
	}
	var a, b bytes.Buffer
	if err := record().WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recordings serialised differently")
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	// 3 procs × (name+sort) + 3 tracks × (name+sort) + 2 spans + 1 instant.
	if len(doc.TraceEvents) != 15 {
		t.Fatalf("got %d events, want 15", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		switch ev.Ph {
		case "M", "X", "i":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid == 0 {
			t.Fatalf("event %q missing pid", ev.Name)
		}
	}
	if byName["kernel vecadd"] != 1 || byName["retry"] != 1 {
		t.Fatalf("span/instant events missing: %v", byName)
	}
	// Procs sorted: host=1, streams=2, transfer=3.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Args["name"] == "host" && ev.Pid != 1 {
			t.Fatalf("host pid = %d, want 1 (sorted first)", ev.Pid)
		}
		if ev.Name == "kernel vecadd" {
			if ev.Ts != 2 || ev.Dur != 3 {
				t.Fatalf("kernel span ts=%v dur=%v, want 2/3 µs", ev.Ts, ev.Dur)
			}
		}
	}
}

func TestOptionsNew(t *testing.T) {
	rec, met := (Options{}).New()
	if rec != nil || met != nil {
		t.Fatal("zero Options should build nil sinks")
	}
	if (Options{}).Enabled() {
		t.Fatal("zero Options should be disabled")
	}
	rec, met = (Options{Trace: true, Metrics: true, TraceMaxEvents: 7}).New()
	if rec == nil || met == nil {
		t.Fatal("enabled Options should build sinks")
	}
	if rec.MaxEvents != 7 {
		t.Fatalf("MaxEvents = %d, want 7", rec.MaxEvents)
	}
}

// BenchmarkDisabledHotPath prices the per-event cost of the disabled
// instrumentation: one nil check per call, no allocations. This is the
// number that keeps the un-instrumented simulation within noise of a
// build without the obs layer.
func BenchmarkDisabledHotPath(b *testing.B) {
	var r *Recorder
	var m *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("host", "h2d", "transfer", 0, time.Microsecond)
		r.Instant("faults", "kernel", "watchdog", 0)
		m.Add("atgpu_host_launches_total", 1)
		m.Observe("atgpu_transfer_in_ns", time.Microsecond)
	}
}

// BenchmarkEnabledSpan prices the live recording path for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	r := NewRecorder(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("host", "h2d", "transfer", 0, time.Microsecond)
		if r.Len() >= DefaultMaxEvents-1 {
			b.StopTimer()
			*r = Recorder{}
			b.StartTimer()
		}
	}
}
