package obs

import (
	"io"
	"os"
)

// Options selects which observability surfaces a run collects. The zero
// value disables everything; disabled surfaces cost one nil check on
// the instrumented paths and allocate nothing.
type Options struct {
	// Trace enables the span/event recorder.
	Trace bool
	// Metrics enables the metrics registry.
	Metrics bool
	// TraceMaxEvents caps the recorder (0 means DefaultMaxEvents).
	TraceMaxEvents int
}

// Enabled reports whether any surface is selected.
func (o Options) Enabled() bool { return o.Trace || o.Metrics }

// New builds the recorder and registry the options select (nil for
// disabled surfaces — the nil values are valid no-op sinks).
func (o Options) New() (*Recorder, *Registry) {
	var rec *Recorder
	var met *Registry
	if o.Trace {
		rec = NewRecorder(o.TraceMaxEvents)
	}
	if o.Metrics {
		met = NewRegistry()
	}
	return rec, met
}

// Report bundles what one run observed: the trace (nil when tracing was
// off) and the metrics snapshot (empty when metrics were off).
type Report struct {
	Trace   *Recorder
	Metrics Snapshot
}

// Merge folds other into r: traces append in other's recording order
// under the given proc tag (empty tag = untagged), metrics add. Used by
// sweeps to fold per-point reports in point order.
func (r *Report) Merge(other *Report, tag string) {
	if other == nil {
		return
	}
	if r.Trace != nil {
		r.Trace.MergeTagged(other.Trace, tag)
	}
	r.Metrics.Merge(other.Metrics)
}

// Snapshot returns the report's metrics snapshot, folding the nil
// (no-report) case into the empty snapshot so callers can embed it
// into a canonical result record without a parallel format.
func (r *Report) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.Metrics
}

// WriteTraceFile writes the trace as Perfetto JSON to path. Writing a
// report with tracing disabled emits an empty trace.
func (r *Report) WriteTraceFile(path string) error {
	return writeFile(path, func(w io.Writer) error { return r.Trace.WriteTrace(w) })
}

// WriteMetricsFile writes the metrics snapshot to path in the
// Prometheus text exposition format.
func (r *Report) WriteMetricsFile(path string) error {
	return writeFile(path, func(w io.Writer) error { return r.Metrics.WritePrometheus(w) })
}

func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
