package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// OTLP/JSON export of a Snapshot (ROADMAP item 5: "export the
// internal/obs metrics registry as OTel/Grafana-ready output"). The
// shapes below mirror the OpenTelemetry metrics protobuf rendered
// through the canonical proto3 JSON mapping — resourceMetrics →
// scopeMetrics → metrics, counters as monotonic cumulative sums with
// int64 values string-encoded, gauges as double points, histograms
// with explicitBounds/bucketCounts — so an OTLP/HTTP collector's JSON
// receiver ingests the output directly.
//
// Timestamps are caller-supplied: obs itself never reads the wall
// clock (the notime vet pass), and a simulated-time snapshot has no
// intrinsic wall-clock anyway. Callers pass the scrape instant; tests
// pass a constant for byte-stable goldens.

type otlpExport struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

type otlpMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Unit        string         `json:"unit,omitempty"`
	Sum         *otlpSum       `json:"sum,omitempty"`
	Gauge       *otlpGauge     `json:"gauge,omitempty"`
	Histogram   *otlpHistogram `json:"histogram,omitempty"`
}

// aggregationTemporality 2 = cumulative, matching both the registry
// semantics and the Prometheus exposition.
const otlpCumulative = 2

type otlpSum struct {
	DataPoints             []otlpNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"`
	IsMonotonic            bool              `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpHistogram struct {
	DataPoints             []otlpHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type otlpNumberPoint struct {
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano string         `json:"timeUnixNano"`
	// Proto3 JSON string-encodes int64; exactly one of AsInt/AsDouble
	// is set.
	AsInt    string   `json:"asInt,omitempty"`
	AsDouble *float64 `json:"asDouble,omitempty"`
}

type otlpHistogramPoint struct {
	Attributes     []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano   string         `json:"timeUnixNano"`
	Count          string         `json:"count"`
	Sum            float64        `json:"sum"`
	BucketCounts   []string       `json:"bucketCounts"`
	ExplicitBounds []float64      `json:"explicitBounds"`
}

// otlpAttrs converts a series' label block into datapoint attributes.
func otlpAttrs(series string) []otlpKeyValue {
	_, labelStr := splitSeries(series)
	if labelStr == "" {
		return nil
	}
	return parseSeriesAttrs(labelStr)
}

// parseSeriesAttrs parses the canonical `k="v",...` label block (as
// composed by Name) back into key/value attributes.
func parseSeriesAttrs(labelStr string) []otlpKeyValue {
	labels, _, err := parseLabelBlock("{" + labelStr + "}")
	if err != nil {
		// A registry key not composed via Name; surface it as one
		// opaque attribute rather than dropping it.
		return []otlpKeyValue{{Key: "series_labels", Value: otlpAnyValue{StringValue: labelStr}}}
	}
	attrs := make([]otlpKeyValue, len(labels))
	for i, l := range labels {
		attrs[i] = otlpKeyValue{Key: l.Key, Value: otlpAnyValue{StringValue: l.Value}}
	}
	return attrs
}

// otlpUnit infers a unit from the repo naming scheme (_ns suffixes are
// simulated or wall-clock nanoseconds).
func otlpUnit(family string) string {
	if strings.HasSuffix(family, "_ns") || strings.HasSuffix(family, "_ns_total") {
		return "ns"
	}
	return ""
}

// WriteOTLP emits the snapshot as an OTLP/JSON ExportMetricsServiceRequest
// for the given service.name resource attribute, stamping every data
// point with nowUnixNano. Families and series are sorted, so equal
// snapshots serialise to equal bytes for equal timestamps.
func (s Snapshot) WriteOTLP(w io.Writer, serviceName string, nowUnixNano int64) error {
	fams, order, err := s.families()
	if err != nil {
		return err
	}
	ts := strconv.FormatInt(nowUnixNano, 10)
	metrics := make([]otlpMetric, 0, len(order))
	for _, fam := range order {
		f := fams[fam]
		m := otlpMetric{Name: fam, Description: helpFor(fam), Unit: otlpUnit(fam)}
		switch f.typ {
		case "counter":
			sum := &otlpSum{AggregationTemporality: otlpCumulative, IsMonotonic: true}
			for _, k := range f.series {
				sum.DataPoints = append(sum.DataPoints, otlpNumberPoint{
					Attributes:   otlpAttrs(k),
					TimeUnixNano: ts,
					AsInt:        strconv.FormatInt(s.Counters[k], 10),
				})
			}
			m.Sum = sum
		case "gauge":
			g := &otlpGauge{}
			for _, k := range f.series {
				v := s.Gauges[k]
				g.DataPoints = append(g.DataPoints, otlpNumberPoint{
					Attributes:   otlpAttrs(k),
					TimeUnixNano: ts,
					AsDouble:     &v,
				})
			}
			m.Gauge = g
		case "histogram":
			hg := &otlpHistogram{AggregationTemporality: otlpCumulative}
			for _, k := range f.series {
				h := s.Histograms[k]
				// Bounds match the Prometheus exposition: 2^i − 1 ns per
				// bucket, one overflow bucket past the last bound.
				bounds := make([]float64, histBuckets)
				counts := make([]string, histBuckets+1)
				for i, c := range h.Buckets {
					bounds[i] = float64((int64(1) << i) - 1)
					counts[i] = strconv.FormatInt(c, 10)
				}
				counts[histBuckets] = strconv.FormatInt(h.Overflow, 10)
				hg.DataPoints = append(hg.DataPoints, otlpHistogramPoint{
					Attributes:     otlpAttrs(k),
					TimeUnixNano:   ts,
					Count:          strconv.FormatInt(h.Count, 10),
					Sum:            float64(h.Sum),
					BucketCounts:   counts,
					ExplicitBounds: bounds,
				})
			}
			m.Histogram = hg
		}
		metrics = append(metrics, m)
	}
	doc := otlpExport{ResourceMetrics: []otlpResourceMetrics{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			{Key: "service.name", Value: otlpAnyValue{StringValue: serviceName}},
		}},
		ScopeMetrics: []otlpScopeMetrics{{
			Scope:   otlpScope{Name: "atgpu/internal/obs"},
			Metrics: metrics,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
