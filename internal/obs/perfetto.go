package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Perfetto export: the recorder serialises to the Chrome trace-event
// JSON format (loadable at https://ui.perfetto.dev or chrome://tracing).
// Procs become processes, tracks become threads; spans are complete
// ("X") events and instants are thread-scoped instant ("i") events.
// Timestamps are simulated time expressed in the format's microsecond
// unit, fractional to nanosecond precision.
//
// Output is byte-deterministic for a given recording: processes and
// tracks are numbered by sorted name, events keep recording order, and
// args serialise in recorded key order.

// traceEvent is the trace-event JSON schema subset we emit. Field order
// here fixes the serialised field order.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// micros converts a simulated instant to the trace format's fractional
// microseconds.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// argMap converts ordered args to the schema's map form. encoding/json
// serialises map keys sorted, so the output stays deterministic.
func argMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Value
	}
	return m
}

// trackIDs assigns stable process and thread ids: pids by sorted proc
// name, tids by sorted track name within each proc.
func (r *Recorder) trackIDs() (pids map[string]int, tids map[[2]string]int, procs []string, tracks map[string][]string) {
	pids = make(map[string]int)
	tids = make(map[[2]string]int)
	tracks = make(map[string][]string)
	seen := make(map[[2]string]bool)
	note := func(proc, track string) {
		if _, ok := pids[proc]; !ok {
			pids[proc] = 0 // numbered after the sort
			procs = append(procs, proc)
		}
		k := [2]string{proc, track}
		if !seen[k] {
			seen[k] = true
			tracks[proc] = append(tracks[proc], track)
		}
	}
	for _, s := range r.spans {
		note(s.Proc, s.Track)
	}
	for _, in := range r.instants {
		note(in.Proc, in.Track)
	}
	sort.Strings(procs)
	for i, p := range procs {
		pids[p] = i + 1
		sort.Strings(tracks[p])
		for j, t := range tracks[p] {
			tids[[2]string{p, t}] = j + 1
		}
	}
	return pids, tids, procs, tracks
}

// WriteTrace emits the recording as one Chrome/Perfetto trace-event
// JSON document. A nil recorder writes an empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	events := []traceEvent{}
	if r != nil {
		pids, tids, procs, tracks := r.trackIDs()
		for _, p := range procs {
			events = append(events, traceEvent{
				Name: "process_name", Ph: "M", Pid: pids[p],
				Args: map[string]any{"name": p},
			})
			events = append(events, traceEvent{
				Name: "process_sort_index", Ph: "M", Pid: pids[p],
				Args: map[string]any{"sort_index": pids[p]},
			})
			for _, t := range tracks[p] {
				tid := tids[[2]string{p, t}]
				events = append(events, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pids[p], Tid: tid,
					Args: map[string]any{"name": t},
				})
				events = append(events, traceEvent{
					Name: "thread_sort_index", Ph: "M", Pid: pids[p], Tid: tid,
					Args: map[string]any{"sort_index": tid},
				})
			}
		}
		for _, s := range r.spans {
			dur := micros(s.End - s.Start)
			events = append(events, traceEvent{
				Name: s.Name, Ph: "X", Ts: micros(s.Start), Dur: &dur,
				Pid: pids[s.Proc], Tid: tids[[2]string{s.Proc, s.Track}],
				Args: argMap(s.Args),
			})
		}
		for _, in := range r.instants {
			events = append(events, traceEvent{
				Name: in.Name, Ph: "i", Ts: micros(in.At), Scope: "t",
				Pid: pids[in.Proc], Tid: tids[[2]string{in.Proc, in.Track}],
				Args: argMap(in.Args),
			})
		}
	}
	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
