// Package obs is the unified observability layer of the ATGPU stack:
// one span/event recorder and one metrics registry that every layer —
// the discrete-event timeline, the simulated host and its streams, the
// device block scheduler, the transfer engine, the fault injector and
// the experiment sweeps — feeds, so a single run exports one Perfetto
// trace and one metrics snapshot instead of four disconnected logs.
//
// Everything is stamped with *simulated* time: timeline instants for
// host-side work, device cycles (converted at the device clock) for
// kernel-internal block spans. No wall clocks, goroutine identities or
// map iteration orders leak into the output, so recordings are
// byte-reproducible across worker counts and machines.
//
// Instrumentation is opt-in and nil-safe: a nil *Recorder or nil
// *Registry is the disabled state, every method on it is a no-op, and
// the instrumented hot paths pay exactly one nil check and zero
// allocations.
package obs

import "time"

// DefaultMaxEvents bounds recorder growth unless overridden: beyond the
// cap the recorder sets Truncated and drops further spans and instants,
// so tracing a huge sweep degrades gracefully instead of exhausting
// memory.
const DefaultMaxEvents = 1 << 20

// Arg is one key/value annotation on a span or instant. Args are kept
// as an ordered slice, not a map, so recordings have no iteration-order
// nondeterminism and the common no-args case allocates nothing.
type Arg struct {
	Key, Value string
}

// Span is one contiguous occupancy on a track: a transfer holding a
// PCIe link direction, a kernel holding the SM array, a thread block
// resident on a multiprocessor, σ on the sync path.
type Span struct {
	// Proc groups tracks into a Perfetto process ("host", "streams",
	// "device", "transfer"; experiment sweeps prefix a per-point tag).
	Proc string
	// Track is the thread-like lane within the process ("h2d",
	// "stream default", "SM0 slot1", ...).
	Track string
	// Name labels the slice.
	Name string
	// Start and End are simulated instants.
	Start, End time.Duration
	// Args carries optional annotations (retry counts, instruction
	// counts, ...), in recording order.
	Args []Arg
}

// Instant is one zero-duration event on a track: an injected fault, a
// detected checksum mismatch, a watchdog fire.
type Instant struct {
	Proc  string
	Track string
	Name  string
	At    time.Duration
	Args  []Arg
}

// Recorder accumulates spans and instants in recording order. It is the
// trace half of a Report; the Registry is the metrics half.
//
// A Recorder is single-goroutine, like the simulated Host that feeds
// it: concurrent sweeps record into per-point recorders and merge them
// afterwards in point order, which is what keeps multi-worker traces
// deterministic.
//
// The zero value is ready to use. A nil *Recorder is the disabled
// state: every method is a no-op and Enabled reports false.
type Recorder struct {
	// MaxEvents caps recorded spans+instants (0 means DefaultMaxEvents);
	// beyond the cap the recorder sets Truncated and drops events.
	MaxEvents int
	// Truncated reports whether the cap was hit.
	Truncated bool

	spans    []Span
	instants []Instant
}

// NewRecorder returns a recorder capped at maxEvents (0 selects
// DefaultMaxEvents).
func NewRecorder(maxEvents int) *Recorder {
	return &Recorder{MaxEvents: maxEvents}
}

// Enabled reports whether the recorder is collecting (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) cap() int {
	if r.MaxEvents > 0 {
		return r.MaxEvents
	}
	return DefaultMaxEvents
}

// Cap reports the effective event cap (DefaultMaxEvents unless
// MaxEvents overrides it), for surfacing truncation to users.
func (r *Recorder) Cap() int {
	if r == nil {
		return DefaultMaxEvents
	}
	return r.cap()
}

// WasTruncated reports whether the cap was hit (false for nil).
func (r *Recorder) WasTruncated() bool { return r != nil && r.Truncated }

func (r *Recorder) full() bool {
	if len(r.spans)+len(r.instants) >= r.cap() {
		r.Truncated = true
		return true
	}
	return false
}

// Span records one occupancy slice. No-op on a nil recorder or beyond
// the event cap.
func (r *Recorder) Span(proc, track, name string, start, end time.Duration, args ...Arg) {
	if r == nil || r.full() {
		return
	}
	r.spans = append(r.spans, Span{Proc: proc, Track: track, Name: name, Start: start, End: end, Args: args})
}

// Instant records one zero-duration event. No-op on a nil recorder or
// beyond the event cap.
func (r *Recorder) Instant(proc, track, name string, at time.Duration, args ...Arg) {
	if r == nil || r.full() {
		return
	}
	r.instants = append(r.instants, Instant{Proc: proc, Track: track, Name: name, At: at, Args: args})
}

// Spans returns the recorded spans in recording order (the live slice;
// callers must not mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Instants returns the recorded instants in recording order (the live
// slice; callers must not mutate).
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	return r.instants
}

// Len reports the number of recorded events (spans plus instants).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans) + len(r.instants)
}

// Merge appends other's events onto r in other's recording order.
// Merging nil, or into nil, is a no-op. Truncation state is sticky: if
// either side truncated, the merge is marked truncated.
func (r *Recorder) Merge(other *Recorder) { r.MergeTagged(other, "") }

// MergeTagged is Merge with every incoming event's Proc prefixed by
// "tag/" — how an experiment sweep folds per-point recorders into one
// trace with one Perfetto process group per sweep point. An empty tag
// leaves Procs untouched.
func (r *Recorder) MergeTagged(other *Recorder, tag string) {
	if r == nil || other == nil {
		return
	}
	if other.Truncated {
		r.Truncated = true
	}
	prefix := ""
	if tag != "" {
		prefix = tag + "/"
	}
	for _, s := range other.spans {
		if r.full() {
			return
		}
		s.Proc = prefix + s.Proc
		r.spans = append(r.spans, s)
	}
	for _, in := range other.instants {
		if r.full() {
			return
		}
		in.Proc = prefix + in.Proc
		r.instants = append(r.instants, in)
	}
}
