package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metric naming scheme (see DESIGN.md "Observability"): every metric is
// atgpu_<layer>_<quantity>[_<unit>][_total]. Counters are int64 and end
// in _total; duration counters carry the _ns unit and count simulated
// nanoseconds exactly (no float folding, so merges are associative and
// snapshots byte-identical across worker counts). Gauges are float64
// set-once summaries. Histograms bucket simulated durations by powers
// of two of a nanosecond.
//
// Series may carry labels: a registry key is either a bare family name
// ("atgpu_host_launches_total") or a family plus a canonical label set
// composed by Name ("atgpud_jobs_total{kind=\"run\",state=\"success\"}").
// WritePrometheus groups series by family, emitting one # HELP/# TYPE
// header per family, so the exposition is accepted by real Prometheus
// scrapers unmodified.

// Label is one key/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// Name composes the canonical series name for family with the given
// labels: family{k1="v1",k2="v2"} with keys sorted, family and keys
// sanitized to the Prometheus grammar, and values escaped. With no
// labels it returns the sanitized family alone. Equal (family, label
// set) pairs always compose to equal strings, so Add/Observe/Set on a
// composed name accumulate per series.
func Name(family string, labels ...Label) string {
	family = SanitizeMetricName(family)
	if len(labels) == 0 {
		return family
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(family)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelKey(l.Key))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal byte
// becomes '_' and a leading digit gains a '_' prefix.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sanitizeLabelKey maps a string onto the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]* (no colons, unlike metric names).
func sanitizeLabelKey(key string) string {
	if key == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// splitSeries cuts a registry key into its family and the brace-wrapped
// label suffix ("" when unlabeled; otherwise `k="v",...` without the
// braces).
func splitSeries(series string) (family, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], strings.TrimSuffix(series[i+1:], "}")
	}
	return series, ""
}

// helpMu guards the package help registry. Help text is exposition
// documentation, not snapshot state: it never participates in Merge or
// JSON, so registering help cannot change any byte-identity contract.
var (
	helpMu   sync.Mutex
	helpText = map[string]string{
		"atgpu_faults_corrupt_total":            "Injected transfer corruption faults.",
		"atgpu_faults_drop_total":               "Injected transfer drop faults.",
		"atgpu_faults_hang_total":               "Injected transfer hang faults.",
		"atgpu_faults_smfail_total":             "Injected SM failure faults.",
		"atgpu_faults_stall_total":              "Injected transfer stall faults.",
		"atgpu_host_compute_busy_ns_total":      "Simulated host compute resource busy time.",
		"atgpu_host_d2h_busy_ns_total":          "Simulated device-to-host link busy time.",
		"atgpu_host_h2d_busy_ns_total":          "Simulated host-to-device link busy time.",
		"atgpu_host_kernel_busy_ns_total":       "Simulated kernel resource busy time.",
		"atgpu_host_launches_total":             "Kernel launches on the simulated host.",
		"atgpu_host_overlap_saved_ns":           "Simulated time saved by stream overlap.",
		"atgpu_host_relaunches_total":           "Watchdog-driven kernel relaunches.",
		"atgpu_host_rounds_total":               "Host compute rounds.",
		"atgpu_host_sync_busy_ns_total":         "Simulated synchronization busy time.",
		"atgpu_host_total_ns":                   "End-to-end simulated run time.",
		"atgpu_host_transfer_fraction":          "Fraction of simulated run time spent transferring.",
		"atgpu_pipeline_saving_ratio":           "Observed pipelined-over-sequential saving ratio.",
		"atgpu_sweep_points_total":              "Sweep points executed.",
		"atgpu_transfer_backoff_ns_total":       "Simulated retry backoff time on the transfer engine.",
		"atgpu_transfer_in_ns":                  "Per-transfer simulated host-to-device durations.",
		"atgpu_transfer_in_ns_total":            "Total simulated host-to-device transfer time.",
		"atgpu_transfer_in_transactions_total":  "Host-to-device transactions.",
		"atgpu_transfer_in_words_total":         "Words transferred host-to-device.",
		"atgpu_transfer_out_ns":                 "Per-transfer simulated device-to-host durations.",
		"atgpu_transfer_out_ns_total":           "Total simulated device-to-host transfer time.",
		"atgpu_transfer_out_transactions_total": "Device-to-host transactions.",
		"atgpu_transfer_out_words_total":        "Words transferred device-to-host.",
		"atgpu_transfer_retries_total":          "Transfer retries after checksum mismatches.",
	}
)

// RegisterHelp records the # HELP text WritePrometheus emits for a
// metric family. Registering again overwrites; the text is trimmed to
// one line.
func RegisterHelp(family, help string) {
	helpMu.Lock()
	helpText[SanitizeMetricName(family)] = strings.ReplaceAll(strings.TrimSpace(help), "\n", " ")
	helpMu.Unlock()
}

// helpFor returns the registered help for a family, or a neutral
// fallback so every family still carries a # HELP line.
func helpFor(family string) string {
	helpMu.Lock()
	defer helpMu.Unlock()
	if h, ok := helpText[family]; ok && h != "" {
		return h
	}
	return "No help registered."
}

// histBuckets is the bucket count of duration histograms: bucket i
// counts observations v with 2^(i-1) ns < v ≤ 2^i − 1 ns (bucket 0
// counts v ≤ 0), which spans up to ~9.3 simulated seconds per
// transaction before the overflow bucket.
const histBuckets = 34

// Histogram is a power-of-two simulated-duration histogram.
type Histogram struct {
	// Count and Sum aggregate all observations (Sum in nanoseconds).
	Count, Sum int64
	// Buckets[i] counts observations with bits.Len64(ns) == i, i.e.
	// ns < 2^i; Overflow counts the rest.
	Buckets [histBuckets]int64
	// Overflow counts observations past the last bucket.
	Overflow int64
}

func (h *Histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.Count++
	h.Sum += ns
	idx := 0
	if ns > 0 {
		idx = bits.Len64(uint64(ns))
	}
	if idx >= histBuckets {
		h.Overflow++
		return
	}
	h.Buckets[idx]++
}

// merge folds other into h.
func (h *Histogram) merge(other Histogram) {
	h.Count += other.Count
	h.Sum += other.Sum
	h.Overflow += other.Overflow
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Registry accumulates named metrics. All methods are safe for
// concurrent use (the transfer engine records from under its own lock
// while the host records from the simulation goroutine) and nil-safe: a
// nil *Registry is the disabled state and every method is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry is collecting (non-nil).
func (m *Registry) Enabled() bool { return m != nil }

// Add increments the named counter by delta. No-op on a nil registry.
func (m *Registry) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// AddDuration increments a duration counter by d's simulated
// nanoseconds. No-op on a nil registry.
func (m *Registry) AddDuration(name string, d time.Duration) {
	m.Add(name, d.Nanoseconds())
}

// Set records the named gauge. No-op on a nil registry.
func (m *Registry) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records one duration observation into the named histogram.
// No-op on a nil registry.
func (m *Registry) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.observe(d)
	m.mu.Unlock()
}

// Snapshot copies the current state into an immutable value. A nil
// registry snapshots to the zero Snapshot.
func (m *Registry) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for k, v := range m.counters {
			s.Counters[k] = v
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for k, v := range m.gauges {
			s.Gauges[k] = v
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]Histogram, len(m.hists))
		for k, v := range m.hists {
			s.Histograms[k] = *v
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, mergeable and
// serialisable. The zero value is an empty snapshot.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// Empty reports whether the snapshot holds no metrics.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Merge folds other into s: counters and histograms add (associative
// and commutative, so any fold order of per-point snapshots yields
// identical totals); gauges overwrite, last writer wins, so merge in a
// deterministic order.
func (s *Snapshot) Merge(other Snapshot) {
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(other.Counters))
		}
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(other.Gauges))
		}
		s.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]Histogram, len(other.Histograms))
		}
		h := s.Histograms[k]
		h.merge(v)
		s.Histograms[k] = h
	}
}

// WriteJSON emits the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), so equal snapshots serialise to equal
// bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promFamily gathers one family's series for exposition: its type and
// its member series keys in sorted order.
type promFamily struct {
	typ    string
	series []string
}

// families groups the snapshot's series by metric family, sanitizing
// family names, and returns the sorted family list. A family claimed by
// two different metric types is a programming error surfaced as one.
func (s Snapshot) families() (map[string]*promFamily, []string, error) {
	fams := make(map[string]*promFamily)
	var order []string
	note := func(series, typ string) error {
		fam, _ := splitSeries(series)
		fam = SanitizeMetricName(fam)
		f, ok := fams[fam]
		if !ok {
			f = &promFamily{typ: typ}
			fams[fam] = f
			order = append(order, fam)
		} else if f.typ != typ {
			return fmt.Errorf("obs: metric family %q used as both %s and %s", fam, f.typ, typ)
		}
		f.series = append(f.series, series)
		return nil
	}
	for _, k := range sortedKeys(s.Counters) {
		if err := note(k, "counter"); err != nil {
			return nil, nil, err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if err := note(k, "gauge"); err != nil {
			return nil, nil, err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		if err := note(k, "histogram"); err != nil {
			return nil, nil, err
		}
	}
	sort.Strings(order)
	return fams, order, nil
}

// promSeriesName rebuilds a series name with its family sanitized and an
// optional suffix spliced between family and labels ("_bucket", "_sum",
// "_count"), plus an optional extra label ("le") appended.
func promSeriesName(series, suffix, extraKey, extraVal string) string {
	fam, labels := splitSeries(series)
	fam = SanitizeMetricName(fam) + suffix
	if extraKey != "" {
		if labels != "" {
			labels += ","
		}
		labels += extraKey + `="` + extraVal + `"`
	}
	if labels == "" {
		return fam
	}
	return fam + "{" + labels + "}"
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format: one # HELP and # TYPE header per metric family (names
// sanitized, families sorted, series sorted within each family),
// histograms as cumulative _bucket/_sum/_count series with le bounds in
// nanoseconds. Real Prometheus scrapers accept the output unmodified —
// the contract pinned by the ParsePrometheus round-trip test.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	fams, order, err := s.families()
	if err != nil {
		return err
	}
	for _, fam := range order {
		f := fams[fam]
		sort.Strings(f.series)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, helpFor(fam), fam, f.typ); err != nil {
			return err
		}
		for _, k := range f.series {
			switch f.typ {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s %d\n", promSeriesName(k, "", "", ""), s.Counters[k]); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s %s\n",
					promSeriesName(k, "", "", ""), strconv.FormatFloat(s.Gauges[k], 'g', -1, 64)); err != nil {
					return err
				}
			case "histogram":
				h := s.Histograms[k]
				cum := int64(0)
				for i, c := range h.Buckets {
					cum += c
					// Bound 2^i − 1 ns: the largest value bucket i admits.
					bound := strconv.FormatInt((int64(1)<<i)-1, 10)
					if _, err := fmt.Fprintf(w, "%s %d\n", promSeriesName(k, "_bucket", "le", bound), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n%s %d\n",
					promSeriesName(k, "_bucket", "le", "+Inf"), h.Count,
					promSeriesName(k, "_sum", "", ""), h.Sum,
					promSeriesName(k, "_count", "", ""), h.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
