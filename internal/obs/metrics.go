package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Metric naming scheme (see DESIGN.md "Observability"): every metric is
// atgpu_<layer>_<quantity>[_<unit>][_total]. Counters are int64 and end
// in _total; duration counters carry the _ns unit and count simulated
// nanoseconds exactly (no float folding, so merges are associative and
// snapshots byte-identical across worker counts). Gauges are float64
// set-once summaries. Histograms bucket simulated durations by powers
// of two of a nanosecond.

// histBuckets is the bucket count of duration histograms: bucket i
// counts observations v with 2^(i-1) ns < v ≤ 2^i − 1 ns (bucket 0
// counts v ≤ 0), which spans up to ~9.3 simulated seconds per
// transaction before the overflow bucket.
const histBuckets = 34

// Histogram is a power-of-two simulated-duration histogram.
type Histogram struct {
	// Count and Sum aggregate all observations (Sum in nanoseconds).
	Count, Sum int64
	// Buckets[i] counts observations with bits.Len64(ns) == i, i.e.
	// ns < 2^i; Overflow counts the rest.
	Buckets [histBuckets]int64
	// Overflow counts observations past the last bucket.
	Overflow int64
}

func (h *Histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.Count++
	h.Sum += ns
	idx := 0
	if ns > 0 {
		idx = bits.Len64(uint64(ns))
	}
	if idx >= histBuckets {
		h.Overflow++
		return
	}
	h.Buckets[idx]++
}

// merge folds other into h.
func (h *Histogram) merge(other Histogram) {
	h.Count += other.Count
	h.Sum += other.Sum
	h.Overflow += other.Overflow
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Registry accumulates named metrics. All methods are safe for
// concurrent use (the transfer engine records from under its own lock
// while the host records from the simulation goroutine) and nil-safe: a
// nil *Registry is the disabled state and every method is a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry is collecting (non-nil).
func (m *Registry) Enabled() bool { return m != nil }

// Add increments the named counter by delta. No-op on a nil registry.
func (m *Registry) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// AddDuration increments a duration counter by d's simulated
// nanoseconds. No-op on a nil registry.
func (m *Registry) AddDuration(name string, d time.Duration) {
	m.Add(name, d.Nanoseconds())
}

// Set records the named gauge. No-op on a nil registry.
func (m *Registry) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records one duration observation into the named histogram.
// No-op on a nil registry.
func (m *Registry) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.observe(d)
	m.mu.Unlock()
}

// Snapshot copies the current state into an immutable value. A nil
// registry snapshots to the zero Snapshot.
func (m *Registry) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for k, v := range m.counters {
			s.Counters[k] = v
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(m.gauges))
		for k, v := range m.gauges {
			s.Gauges[k] = v
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]Histogram, len(m.hists))
		for k, v := range m.hists {
			s.Histograms[k] = *v
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, mergeable and
// serialisable. The zero value is an empty snapshot.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// Empty reports whether the snapshot holds no metrics.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Merge folds other into s: counters and histograms add (associative
// and commutative, so any fold order of per-point snapshots yields
// identical totals); gauges overwrite, last writer wins, so merge in a
// deterministic order.
func (s *Snapshot) Merge(other Snapshot) {
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(other.Counters))
		}
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(other.Gauges))
		}
		s.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]Histogram, len(other.Histograms))
		}
		h := s.Histograms[k]
		h.merge(v)
		s.Histograms[k] = h
	}
}

// WriteJSON emits the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), so equal snapshots serialise to equal
// bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format, names sorted, histograms as cumulative _bucket/_sum/_count
// series with le bounds in nanoseconds.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", k, k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
			k, k, strconv.FormatFloat(s.Gauges[k], 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", k); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range h.Buckets {
			cum += c
			// Bound 2^i − 1 ns: the largest value bucket i admits.
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", k, (int64(1)<<i)-1, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			k, h.Count, k, h.Sum, k, h.Count); err != nil {
			return err
		}
	}
	return nil
}
