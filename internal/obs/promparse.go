package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the Prometheus text exposition format (version
// 0.0.4) — the other half of WritePrometheus. It exists so the repo can
// prove, in-process, that everything it exposes at /metrics is exactly
// what a real scraper would ingest: the round-trip test feeds
// WritePrometheus output back through ParsePrometheus and compares
// values, the load harness uses it to read the daemon's server-side
// counters, and the chaos suite uses it to assert every scrape under
// storm parses.
//
// The parser is deliberately stricter than a production scraper: it
// requires a # TYPE header before any sample of a family, contiguous
// family blocks, valid metric/label grammar, and internally consistent
// histograms (cumulative buckets, le="+Inf" equal to _count). Our own
// writer always satisfies these, so any violation is a regression.

// PromSample is one parsed sample line.
type PromSample struct {
	// Series is the full series name as written (family + label block).
	Series string
	// Labels holds the parsed label pairs in appearance order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s PromSample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// PromFamily is one metric family: its # TYPE, # HELP and samples in
// appearance order. For histograms the samples are the raw _bucket,
// _sum and _count series.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// PromExposition is a parsed scrape.
type PromExposition struct {
	// Families holds the families in appearance order.
	Families []*PromFamily
	byName   map[string]*PromFamily
}

// Family returns the named family, or nil.
func (e *PromExposition) Family(name string) *PromFamily {
	return e.byName[name]
}

// Value returns the value of the exact series (family plus canonical
// label block, as composed by Name) and whether it was present.
func (e *PromExposition) Value(series string) (float64, bool) {
	fam, _ := splitSeries(series)
	f := e.byName[fam]
	if f == nil {
		// Histogram children live under their parent family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(fam, suffix); ok {
				if pf := e.byName[base]; pf != nil {
					f = pf
					break
				}
			}
		}
	}
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Series == series {
			return s.Value, true
		}
	}
	return 0, false
}

// CounterTotal sums every series of a counter (or gauge) family — the
// label-blind view the load harness wants for families like
// atgpud_rejected_total{reason=...}.
func (e *PromExposition) CounterTotal(family string) (float64, bool) {
	f := e.byName[family]
	if f == nil {
		return 0, false
	}
	total := 0.0
	for _, s := range f.Samples {
		total += s.Value
	}
	return total, true
}

// HistogramTotal sums a histogram family's _count and _sum across all
// label sets, returning (count, sum).
func (e *PromExposition) HistogramTotal(family string) (count, sum float64, ok bool) {
	f := e.byName[family]
	if f == nil || f.Type != "histogram" {
		return 0, 0, false
	}
	for _, s := range f.Samples {
		fam, _ := splitSeries(s.Series)
		switch fam {
		case family + "_count":
			count += s.Value
			ok = true
		case family + "_sum":
			sum += s.Value
		}
	}
	return count, sum, ok
}

// validPromTypes enumerates the exposition format's metric types.
var validPromTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelKey(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validMetricName(name)
}

// familyOf maps a sample's metric name onto its family given the open
// family: histogram children (_bucket/_sum/_count) fold onto the parent.
func familyOf(name, open string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok && base == open {
			return base
		}
	}
	return name
}

// ParsePrometheus parses one text-format scrape, validating grammar and
// histogram consistency. Any violation returns an error naming the line.
func ParsePrometheus(r io.Reader) (*PromExposition, error) {
	exp := &PromExposition{byName: make(map[string]*PromFamily)}
	var open *PromFamily
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) (*PromExposition, error) {
			return nil, fmt.Errorf("prometheus parse: line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fail("invalid metric name in HELP")
			}
			if f := exp.byName[name]; f != nil {
				return fail("duplicate HELP for family %s", name)
			}
			open = &PromFamily{Name: name, Help: help}
			exp.Families = append(exp.Families, open)
			exp.byName[name] = open
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return fail("malformed TYPE line")
			}
			name, typ := fields[0], fields[1]
			if !validMetricName(name) {
				return fail("invalid metric name in TYPE")
			}
			if !validPromTypes[typ] {
				return fail("unknown metric type %q", typ)
			}
			if f := exp.byName[name]; f != nil {
				// HELP may precede TYPE for the same (still open) family.
				if f != open || f.Type != "" {
					return fail("duplicate TYPE for family %s", name)
				}
				f.Type = typ
				continue
			}
			open = &PromFamily{Name: name, Type: typ}
			exp.Families = append(exp.Families, open)
			exp.byName[name] = open
		case strings.HasPrefix(line, "#"):
			continue // free-form comment
		default:
			name, labels, value, err := parseSampleLine(line)
			if err != nil {
				return fail("%v", err)
			}
			if open == nil {
				return fail("sample before any # TYPE header")
			}
			fam := familyOf(name, open.Name)
			if fam != open.Name {
				return fail("sample outside its family block (open family %s)", open.Name)
			}
			series := canonicalSeries(name, labels)
			if seen[series] {
				return fail("duplicate series %s", series)
			}
			seen[series] = true
			open.Samples = append(open.Samples, PromSample{Series: series, Labels: labels, Value: value})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range exp.Families {
		if f.Type == "" {
			return nil, fmt.Errorf("prometheus parse: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, fmt.Errorf("prometheus parse: family %s: %w", f.Name, err)
			}
		}
	}
	return exp, nil
}

// canonicalSeries renders name{labels...} with labels in appearance
// order (the writer already sorts, so written order is canonical).
func canonicalSeries(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// parseSampleLine parses `name{labels} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	// Metric name runs to '{' or whitespace.
	end := 0
	for end < len(rest) && rest[end] != '{' && rest[end] != ' ' && rest[end] != '\t' {
		end++
	}
	name = rest[:end]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = parseLabelBlock(rest)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp] after name, got %q", rest)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, err
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabelBlock parses `{k="v",...}` with escape handling, returning
// the labels and the remainder of the line.
func parseLabelBlock(s string) ([]Label, string, error) {
	s = s[1:] // consume '{'
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelKey(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", key, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		s = s[i:]
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' after label %s", key)
	}
}

// parsePromValue parses a sample value, accepting the format's special
// floats.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return v, nil
}

// validateHistogram checks per-label-set consistency: cumulative
// non-decreasing buckets in written order, an le="+Inf" bucket equal to
// the matching _count, and a _sum present.
func validateHistogram(f *PromFamily) error {
	type hist struct {
		lastLe    float64
		lastCum   float64
		inf       float64
		hasInf    bool
		count     float64
		hasCount  bool
		hasSum    bool
		bucketSet bool
	}
	hists := make(map[string]*hist)
	get := func(labels []Label) *hist {
		// Key on the non-le labels, sorted.
		var ks []string
		for _, l := range labels {
			if l.Key != "le" {
				ks = append(ks, l.Key+"="+l.Value)
			}
		}
		sort.Strings(ks)
		k := strings.Join(ks, ",")
		h, ok := hists[k]
		if !ok {
			h = &hist{lastLe: math.Inf(-1)}
			hists[k] = h
		}
		return h
	}
	for _, s := range f.Samples {
		name, _ := splitSeries(s.Series)
		h := get(s.Labels)
		switch name {
		case f.Name + "_bucket":
			leStr := s.Label("le")
			if leStr == "" {
				return fmt.Errorf("bucket series %s without le label", s.Series)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("bucket series %s: %v", s.Series, err)
			}
			if le <= h.lastLe {
				return fmt.Errorf("bucket le %q out of order", leStr)
			}
			if h.bucketSet && s.Value < h.lastCum {
				return fmt.Errorf("bucket counts not cumulative at le=%q (%v < %v)", leStr, s.Value, h.lastCum)
			}
			h.lastLe, h.lastCum, h.bucketSet = le, s.Value, true
			if math.IsInf(le, 1) {
				h.inf, h.hasInf = s.Value, true
			}
		case f.Name + "_sum":
			h.hasSum = true
		case f.Name + "_count":
			h.count, h.hasCount = s.Value, true
		default:
			return fmt.Errorf("unexpected series %s in histogram family", s.Series)
		}
	}
	for k, h := range hists {
		if !h.hasInf || !h.hasCount || !h.hasSum {
			return fmt.Errorf("label set {%s}: missing +Inf bucket, _sum or _count", k)
		}
		if h.inf != h.count {
			return fmt.Errorf("label set {%s}: +Inf bucket %v != count %v", k, h.inf, h.count)
		}
	}
	return nil
}
