package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNameComposition(t *testing.T) {
	cases := []struct {
		family string
		labels []Label
		want   string
	}{
		{"atgpud_jobs_total", nil, "atgpud_jobs_total"},
		{"atgpud_jobs_total", []Label{{"state", "success"}, {"kind", "run"}},
			`atgpud_jobs_total{kind="run",state="success"}`},
		{"bad name!", []Label{{"k", "v"}}, `bad_name_{k="v"}`},
		{"9lead", nil, "_9lead"},
		{"fam", []Label{{"client", `quote" back\ nl` + "\n"}},
			`fam{client="quote\" back\\ nl\n"}`},
		{"fam", []Label{{"bad-key", "v"}}, `fam{bad_key="v"}`},
	}
	for _, c := range cases {
		if got := Name(c.family, c.labels...); got != c.want {
			t.Errorf("Name(%q, %v) = %q, want %q", c.family, c.labels, got, c.want)
		}
	}
	// Equal label sets in any order compose identically.
	a := Name("f", Label{"x", "1"}, Label{"y", "2"})
	b := Name("f", Label{"y", "2"}, Label{"x", "1"})
	if a != b {
		t.Fatalf("label order changed composition: %q vs %q", a, b)
	}
}

// TestPrometheusRoundTrip pins satellite 1: WritePrometheus output,
// fed back through the strict exposition parser, reproduces every
// value — including labeled series, escaped label values, and
// histogram children.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add("atgpu_host_launches_total", 7)
	reg.Add(Name("atgpud_jobs_total", Label{"kind", "run"}, Label{"state", "success"}), 5)
	reg.Add(Name("atgpud_jobs_total", Label{"kind", "sweep"}, Label{"state", "failed"}), 2)
	reg.Add(Name("atgpud_rejected_total", Label{"reason", `odd"value\with`}), 3)
	reg.Set("atgpud_queue_depth", 4)
	reg.Set(Name("atgpud_client_inflight", Label{"client", "10.0.0.1"}), 2.5)
	reg.Observe("atgpu_transfer_in_ns", 100*time.Nanosecond)
	reg.Observe("atgpu_transfer_in_ns", 3*time.Microsecond)
	reg.Observe(Name("atgpud_job_duration_ns", Label{"kind", "run"}), 50*time.Millisecond)
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exp, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip failed to parse:\n%s\nerror: %v", buf.String(), err)
	}

	// Every counter and gauge value survives the trip exactly.
	for series, want := range snap.Counters {
		got, ok := exp.Value(series)
		if !ok || got != float64(want) {
			t.Errorf("counter %s: got (%v, %v), want %d", series, got, ok, want)
		}
	}
	for series, want := range snap.Gauges {
		got, ok := exp.Value(series)
		if !ok || got != want {
			t.Errorf("gauge %s: got (%v, %v), want %v", series, got, ok, want)
		}
	}
	// Histogram count/sum survive per family.
	count, sum, ok := exp.HistogramTotal("atgpu_transfer_in_ns")
	if !ok || count != 2 || sum != float64((100*time.Nanosecond+3*time.Microsecond).Nanoseconds()) {
		t.Errorf("transfer_in histogram: count=%v sum=%v ok=%v", count, sum, ok)
	}
	if _, ok := exp.Value(Name("atgpud_job_duration_ns", Label{"kind", "run"}) + "_nonsense"); ok {
		t.Error("lookup of nonexistent series succeeded")
	}
	// Labeled histogram children carry their labels plus le.
	f := exp.Family("atgpud_job_duration_ns")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("labeled histogram family missing: %+v", f)
	}
	sawLabeledBucket := false
	for _, s := range f.Samples {
		if strings.HasPrefix(s.Series, "atgpud_job_duration_ns_bucket{") {
			if s.Label("kind") != "run" || s.Label("le") == "" {
				t.Fatalf("bucket labels wrong: %+v", s)
			}
			sawLabeledBucket = true
		}
	}
	if !sawLabeledBucket {
		t.Fatal("no labeled bucket series found")
	}
	// Every family carries HELP and TYPE.
	for _, f := range exp.Families {
		if f.Help == "" || f.Type == "" {
			t.Errorf("family %s missing help or type: %+v", f.Name, f)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample before type", "foo 1\n"},
		{"bad metric name", "# TYPE 9foo counter\n9foo 1\n"},
		{"unknown type", "# TYPE foo widget\nfoo 1\n"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"sample outside family", "# TYPE foo counter\nbar 1\n"},
		{"unterminated label", `# TYPE foo counter` + "\n" + `foo{a="x 1` + "\n"},
		{"bad escape", `# TYPE foo counter` + "\n" + `foo{a="\q"} 1` + "\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"colon in label", `# TYPE foo counter` + "\n" + `foo{a:b="x"} 1` + "\n"},
		{"help without type", "# HELP foo docs\nfoo 1\n"},
		{"bucket le out of order",
			"# TYPE h histogram\n" +
				`h_bucket{le="10"} 1` + "\n" + `h_bucket{le="5"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\n" + "h_sum 3\nh_count 2\n"},
		{"non-cumulative buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 3\nh_count 5\n"},
		{"inf bucket disagrees with count",
			"# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 4` + "\n" + "h_sum 3\nh_count 5\n"},
		{"histogram missing sum",
			"# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 4` + "\n" + "h_count 4\n"},
	}
	for _, c := range cases {
		if _, err := ParsePrometheus(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: parser accepted malformed input:\n%s", c.name, c.in)
		}
	}
}

func TestParsePrometheusAccepts(t *testing.T) {
	in := "# random comment\n" +
		"# HELP up Whether the target is up.\n" +
		"# TYPE up gauge\n" +
		"up 1\n" +
		"\n" +
		"# TYPE reqs_total counter\n" +
		`reqs_total{code="200",route="/metrics"} 10 1700000000000` + "\n" +
		`reqs_total{code="404",route="/metrics"} 2` + "\n" +
		"# TYPE temp gauge\n" +
		"temp -3.5e-2\n" +
		"# TYPE odd gauge\n" +
		"odd NaN\n"
	exp, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := exp.Value(`reqs_total{code="200",route="/metrics"}`); !ok || v != 10 {
		t.Fatalf("reqs 200 = %v, %v", v, ok)
	}
	if total, ok := exp.CounterTotal("reqs_total"); !ok || total != 12 {
		t.Fatalf("CounterTotal = %v, %v", total, ok)
	}
	if v, ok := exp.Value("temp"); !ok || v != -3.5e-2 {
		t.Fatalf("temp = %v, %v", v, ok)
	}
	if v, ok := exp.Value("odd"); !ok || !math.IsNaN(v) {
		t.Fatalf("odd = %v, %v", v, ok)
	}
	if got := exp.Family("up").Help; got != "Whether the target is up." {
		t.Fatalf("help = %q", got)
	}
}

func TestFamilyTypeConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Add("fam", 1)
	reg.Set(Name("fam", Label{"k", "v"}), 2)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err == nil {
		t.Fatal("WritePrometheus accepted a family used as both counter and gauge")
	}
}

func TestRegisterHelpAppearsInExposition(t *testing.T) {
	RegisterHelp("test_custom_total", "A test\nmetric.")
	reg := NewRegistry()
	reg.Add("test_custom_total", 1)
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP test_custom_total A test metric.\n") {
		t.Fatalf("help missing or unflattened:\n%s", buf.String())
	}
}

func TestWriteOTLP(t *testing.T) {
	reg := NewRegistry()
	reg.Add(Name("atgpud_jobs_total", Label{"kind", "run"}, Label{"state", "success"}), 5)
	reg.Set("atgpud_queue_depth", 3)
	reg.Observe("atgpu_transfer_in_ns", 100*time.Nanosecond)
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteOTLP(&buf, "atgpud", 1700000000000000000); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	var doc struct {
		ResourceMetrics []struct {
			Resource struct {
				Attributes []struct {
					Key   string
					Value struct{ StringValue string }
				}
			}
			ScopeMetrics []struct {
				Metrics []struct {
					Name string
					Sum  *struct {
						DataPoints []struct {
							Attributes []struct {
								Key   string
								Value struct{ StringValue string }
							}
							TimeUnixNano string
							AsInt        string
						}
						AggregationTemporality int
						IsMonotonic            bool
					}
					Gauge *struct {
						DataPoints []struct{ AsDouble *float64 }
					}
					Histogram *struct {
						DataPoints []struct {
							Count          string
							BucketCounts   []string
							ExplicitBounds []float64
						}
						AggregationTemporality int
					}
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	rm := doc.ResourceMetrics[0]
	if rm.Resource.Attributes[0].Key != "service.name" || rm.Resource.Attributes[0].Value.StringValue != "atgpud" {
		t.Fatalf("resource attributes: %+v", rm.Resource.Attributes)
	}
	byName := map[string]int{}
	metrics := rm.ScopeMetrics[0].Metrics
	for i, m := range metrics {
		byName[m.Name] = i
	}
	sum := metrics[byName["atgpud_jobs_total"]].Sum
	if sum == nil || !sum.IsMonotonic || sum.AggregationTemporality != 2 {
		t.Fatalf("counter sum shape: %+v", sum)
	}
	dp := sum.DataPoints[0]
	if dp.AsInt != "5" || dp.TimeUnixNano != "1700000000000000000" {
		t.Fatalf("counter datapoint: %+v", dp)
	}
	attrs := map[string]string{}
	for _, a := range dp.Attributes {
		attrs[a.Key] = a.Value.StringValue
	}
	if attrs["kind"] != "run" || attrs["state"] != "success" {
		t.Fatalf("counter attributes: %v", attrs)
	}
	g := metrics[byName["atgpud_queue_depth"]].Gauge
	if g == nil || g.DataPoints[0].AsDouble == nil || *g.DataPoints[0].AsDouble != 3 {
		t.Fatalf("gauge shape: %+v", g)
	}
	h := metrics[byName["atgpu_transfer_in_ns"]].Histogram
	if h == nil || h.AggregationTemporality != 2 {
		t.Fatalf("histogram shape: %+v", h)
	}
	hp := h.DataPoints[0]
	if hp.Count != "1" || len(hp.BucketCounts) != len(hp.ExplicitBounds)+1 {
		t.Fatalf("histogram datapoint: count=%s buckets=%d bounds=%d",
			hp.Count, len(hp.BucketCounts), len(hp.ExplicitBounds))
	}
	// Determinism: same snapshot, same timestamp, same bytes.
	var buf2 bytes.Buffer
	if err := snap.WriteOTLP(&buf2, "atgpud", 1700000000000000000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteOTLP is not byte-deterministic")
	}
}
