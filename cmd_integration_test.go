package atgpu

// End-to-end tests of the command-line tools: each binary is built once
// into a temp dir and driven through its main subcommands, checking output
// markers rather than exact text.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles ./cmd/<name> into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCmdAtgpu(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "atgpu")

	out := runTool(t, bin, "table1")
	for _, want := range []string{"ATGPU", "Host/Device Data Transfer"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "calibrate")
	for _, want := range []string{"gamma", "lambda", "alpha", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "analyze", "-alg", "reduce", "-n", "100000")
	for _, want := range []string{"rounds R", "GPU-cost", "SWGPU", "ΔT"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "run", "-alg", "vecadd", "-n", "50000")
	for _, want := range []string{"verified against CPU reference", "observed:", "predicted:", "ΔE"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "ooc", "-n", "65536", "-chunk", "8192")
	for _, want := range []string{"serial schedule", "overlapped schedule", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("ooc output missing %q:\n%s", want, out)
		}
	}

	// Unknown command exits non-zero.
	if err := exec.Command(bin, "nonsense").Run(); err == nil {
		t.Error("unknown command should fail")
	}
}

func TestCmdSimgpu(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "simgpu")

	out := runTool(t, bin, "-kernel", "reduce", "-n", "10000")
	for _, want := range []string{"kernel time", "transfer time", "total time", "global: accesses"} {
		if !strings.Contains(out, want) {
			t.Errorf("simgpu output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "-kernel", "vecadd", "-n", "128", "-device", "tiny", "-disasm")
	if !strings.Contains(out, "ld.global") {
		t.Errorf("disassembly missing:\n%s", out)
	}
}

func TestCmdFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "atgpu-figures")

	out := runTool(t, bin, "-fig", "1")
	if !strings.Contains(out, "Table I") {
		t.Errorf("fig 1 output missing Table I:\n%s", out)
	}

	// A reduced fig-3 run with CSV output.
	csvDir := filepath.Join(dir, "csv")
	out = runTool(t, bin, "-fig", "3", "-out", csvDir)
	for _, want := range []string{"fig3a", "vecadd", "ΔE", "slope ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig 3 output missing %q", want)
		}
	}
	for _, f := range []string{"fig3a.csv", "fig3b.csv", "fig3c.csv"} {
		data, err := os.ReadFile(filepath.Join(csvDir, f))
		if err != nil {
			t.Errorf("missing CSV %s: %v", f, err)
			continue
		}
		if !strings.HasPrefix(string(data), "n,") {
			t.Errorf("%s: bad header: %q", f, string(data[:20]))
		}
	}
}
