package atgpu

// BenchmarkSimSpeed measures raw simulator throughput on a block-uniform
// saxpy kernel (y[i] = a·x[i] + y[i]) in three arms:
//
//	legacy-switch: the reference switch interpreter (Config.LegacyInterp)
//	decoded:       the decoded-IR fast path, memoization off
//	decoded-memo:  decoded IR plus analyzer-certified block memoization
//
// Each op simulates one full launch of simSpeedBlocks thread blocks on the
// GTX650 preset; divide ns/op by simSpeedBlocks for ns per simulated block.
// CI parses `-bench SimSpeed` output into BENCH_simspeed.json; the gate
// job fails on >15% ns/op regression against the committed benchmark
// trajectory (testdata/trajectory.jsonl, via `atgpu results gate`).

import (
	"testing"

	"atgpu/internal/analyze"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
)

const (
	simSpeedN      = 1 << 18
	simSpeedBlocks = simSpeedN / 32 // GTX650 warp width
)

// saxpyKernel builds y[idx] = a·x[idx] + y[idx], idx = blk·b + lane.
func saxpyKernel(b *testing.B, width int, alpha int64, baseX, baseY int) *kernel.Program {
	b.Helper()
	kb := kernel.NewBuilder("saxpy", 0)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	x := kb.Reg("x")
	y := kb.Reg("y")
	addr := kb.Reg("addr")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(width)))
	kb.Add(idx, idx, kernel.R(j))
	kb.Add(addr, idx, kernel.Imm(int64(baseX)))
	kb.LdGlobal(x, addr)
	kb.Mul(x, x, kernel.Imm(alpha))
	kb.Add(addr, idx, kernel.Imm(int64(baseY)))
	kb.LdGlobal(y, addr)
	kb.Add(y, y, kernel.R(x))
	kb.StGlobal(addr, y)
	prog, err := kb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func simSpeedDevice(b *testing.B, legacy bool, prover simgpu.UniformProver) *simgpu.Device {
	b.Helper()
	cfg := simgpu.GTX650()
	cfg.GlobalWords = 1 << 20
	cfg.LegacyInterp = legacy
	dev, err := simgpu.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if prover != nil {
		dev.SetUniformProver(prover)
	}
	raw := dev.Global().Raw()
	for i := 0; i < 2*simSpeedN; i++ {
		raw[i] = int64(i%97 - 48)
	}
	return dev
}

func BenchmarkSimSpeed(b *testing.B) {
	arms := []struct {
		name   string
		legacy bool
		prover simgpu.UniformProver
	}{
		{"legacy-switch", true, nil},
		{"decoded", false, nil},
		{"decoded-memo", false, analyze.UniformProver},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			dev := simSpeedDevice(b, arm.legacy, arm.prover)
			prog := saxpyKernel(b, dev.Config().WarpWidth, 3, 0, simSpeedN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dev.Launch(prog, simSpeedBlocks); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if arm.prover != nil && dev.MemoSkips() == 0 {
				b.Fatal("memoization never engaged in decoded-memo arm")
			}
		})
	}
}
