// Command atgpud serves the repo's simulation capabilities — run, sweep,
// pipeline, analyze, lint — as a long-running JSON HTTP API over a pool
// of warmed (pre-calibrated) simulated systems.
//
// Usage:
//
//	atgpud [-addr :8080] [-workers 4] [-queue 64] [-per-client 16]
//	       [-timeout 2m] [-drain 10s] [-cache 256] [-warm gtx650]
//	       [-manifest atgpud-manifest.json] [-results results.jsonl]
//	       [-trace-ring 256] [-pprof-addr ""] [-quiet]
//
// Telemetry: the daemon logs every job transition and HTTP request as
// JSON (log/slog) on stderr, serves wall-clock operational metrics at
// GET /metrics (Prometheus text; /metrics.json and /metrics.otlp for
// JSON and OTLP-shaped export), an aggregate service timeline at
// GET /tracez (Perfetto), and per-job artifacts at
// GET /v1/jobs/{id}/trace and /v1/jobs/{id}/metrics for jobs submitted
// with "trace"/"metrics" set. -pprof-addr exposes net/http/pprof on a
// separate listener (off by default, never on the API address).
//
// Jobs are tracked in a manifest with an explicit state machine
// (pending → running → success|failed|timeout|cancelled) and an
// append-only event log; every job runs isolated with a deadline and
// panic recovery; admission is bounded (429 + Retry-After under
// overload, 503 on /readyz before that); results are content-addressed
// and cached, so identical requests are served without re-simulation,
// byte-identical to a fresh run. SIGINT/SIGTERM drains gracefully:
// running jobs get -drain to finish, queued jobs are cancelled, and the
// manifest is persisted to -manifest.
//
// See DESIGN.md ("Service & job lifecycle") for the API and README.md
// for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, exposed only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atgpu/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "job worker pool size")
	queue := flag.Int("queue", 64, "admission queue bound (full queue answers 429)")
	perClient := flag.Int("per-client", 16, "max in-flight jobs per client (-1 disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for running jobs")
	cache := flag.Int("cache", 256, "result cache entry bound")
	warm := flag.String("warm", "gtx650", "comma-separated device presets to pre-calibrate at boot")
	manifest := flag.String("manifest", "atgpud-manifest.json", "persist the job manifest here on shutdown (empty disables)")
	resultsPath := flag.String("results", "", "append successful jobs' records to this JSONL result store (empty disables)")
	traceRing := flag.Int("trace-ring", 0, "per-job trace/metrics retention ring size (0 = default 256)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	quiet := flag.Bool("quiet", false, "suppress structured JSON logs on stderr")
	flag.Parse()

	cfg := service.ServerConfig{
		Workers:        *workers,
		QueueSize:      *queue,
		PerClient:      *perClient,
		DefaultTimeout: *timeout,
		DrainTimeout:   *drain,
		CacheEntries:   *cache,
		ManifestPath:   *manifest,
		ResultsPath:    *resultsPath,
		TraceRing:      *traceRing,
	}
	if !*quiet {
		cfg.LogWriter = os.Stderr
	}
	if *warm != "" {
		cfg.Warm = strings.Split(*warm, ",")
	}
	if err := run(*addr, *pprofAddr, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "atgpud: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, pprofAddr string, cfg service.ServerConfig) error {
	svc, err := service.NewServer(cfg)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if pprofAddr != "" {
		// pprof is registered on the default mux by its blank import;
		// serve it on its own listener so profiling endpoints never share
		// the API address. Best-effort: a dead pprof listener is logged,
		// not fatal.
		pprofServer := &http.Server{Addr: pprofAddr, Handler: http.DefaultServeMux}
		go func() {
			defer func() {
				if v := recover(); v != nil {
					fmt.Fprintf(os.Stderr, "atgpud: pprof server panic: %v\n", v)
				}
			}()
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "atgpud: pprof listener: %v\n", err)
			}
		}()
		defer pprofServer.Close()
		fmt.Fprintf(os.Stderr, "atgpud: pprof on %s\n", pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() {
		defer func() {
			// The ListenAndServe goroutine only reports; a panic here
			// must not take the daemon down un-drained.
			if v := recover(); v != nil {
				errCh <- fmt.Errorf("http server panic: %v", v)
			}
		}()
		errCh <- httpServer.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "atgpud: serving on %s (workers=%d queue=%d cache=%d warm=%s)\n",
		addr, cfg.Workers, cfg.QueueSize, cfg.CacheEntries, strings.Join(cfg.Warm, ","))

	select {
	case err := <-errCh:
		// Listener died on its own; still drain the jobs we accepted.
		svcErr := svc.Shutdown(context.Background())
		if err != nil {
			return err
		}
		return svcErr
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "atgpud: signal received, draining")

	// Stop accepting connections first, then drain jobs. Each phase gets
	// the drain budget plus slack so a wedged phase cannot hang exit.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), cfg.DrainTimeout+5*time.Second)
	defer cancelHTTP()
	httpErr := httpServer.Shutdown(httpCtx)

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 2*cfg.DrainTimeout+5*time.Second)
	defer cancelDrain()
	svcErr := svc.Shutdown(drainCtx)

	if cfg.ManifestPath != "" {
		fmt.Fprintf(os.Stderr, "atgpud: manifest persisted to %s\n", cfg.ManifestPath)
	}
	if svcErr != nil {
		return svcErr
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	fmt.Fprintln(os.Stderr, "atgpud: drained cleanly")
	return nil
}
