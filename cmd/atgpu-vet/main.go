// Command atgpu-vet runs the repo's custom static checks (see
// internal/vet): no wall-clock or global-randomness reads in deterministic
// packages, no map iteration feeding ordered output anywhere, no
// unguarded goroutine launches (missing recover/sched.Protect) in the
// daemon's long-running packages, no append/make allocation in the
// simulator's per-step hot path (exec*/replay* functions), and opcode
// parity — every kernel.Op* handled by the legacy interpreter, the
// decoded interpreter, and the static analyzer.
//
// Usage:
//
//	atgpu-vet [./...]
//
// Arguments are directories or the ./... pattern (the default); every
// non-test .go file under them is checked. Diagnostics print one per line
// as path:line:col: message [pass], and any diagnostic makes the exit
// status 1, so CI can gate on it directly.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"atgpu/internal/vet"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	ds, err := check(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgpu-vet:", err)
		os.Exit(2)
	}
	for _, d := range ds {
		fmt.Println(d)
	}
	if len(ds) > 0 {
		os.Exit(1)
	}
}

// check expands the arguments into Go files and runs the passes.
func check(args []string) ([]vet.Diagnostic, error) {
	module, root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	files, err := expand(args)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	parity := vet.NewOpParity()
	var ds []vet.Diagnostic
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		ip := importPath(module, root, path)
		ds = append(ds, vet.CheckFile(fset, f, ip)...)
		parity.AddFile(fset, f, ip)
	}
	ds = append(ds, parity.Diagnostics()...)
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		return ds[i].Pos.Offset < ds[j].Pos.Offset
	})
	return ds, nil
}

// moduleRoot finds go.mod upward from the working directory and reads the
// module path, so files map to import paths without build metadata.
func moduleRoot() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// importPath derives a file's package import path from its directory.
func importPath(module, root, file string) string {
	dir, err := filepath.Abs(filepath.Dir(file))
	if err != nil {
		return module
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." || strings.HasPrefix(rel, "..") {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// expand turns the argument list into a sorted list of non-test .go files.
// A trailing /... recurses; a plain directory takes only its own files.
func expand(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var files []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			files = append(files, path)
		}
	}
	for _, arg := range args {
		dir, recurse := strings.CutSuffix(arg, "/...")
		if dir == "" || dir == "." {
			dir = "."
		}
		info, err := os.Stat(dir)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if wanted(dir) {
				add(dir)
			}
			continue
		}
		if !recurse {
			entries, err := os.ReadDir(dir)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && wanted(e.Name()) {
					add(filepath.Join(dir, e.Name()))
				}
			}
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") && path != dir {
					return filepath.SkipDir
				}
				return nil
			}
			if wanted(d.Name()) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// wanted reports whether a file name is a non-test Go source file.
func wanted(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}
