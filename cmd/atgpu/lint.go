package main

import (
	"encoding/json"
	"fmt"
	"os"

	"atgpu"
	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/kernel"
	"atgpu/internal/pseudocode"
)

// lintCmd statically analyses kernels without running them: either one
// built-in workload (via -alg/-n) or a list of pseudocode files, whose
// `#! lint:` directives supply block count and parameter bindings. Reports
// go to stdout (or -o) as text or, with -json, as a JSON array. Returns an
// error — exiting non-zero — when any kernel carries error-severity
// findings.
func lintCmd(files []string, alg string, n, blocksFlag int, jsonOut bool, outPath string, opts atgpu.Options) error {
	// Calibrate once so every report carries the Expression (1)/(2) cost
	// estimate alongside the findings.
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}
	cp := sys.CostParams()

	var names []string
	var reports []*analyze.Report
	if len(files) == 0 {
		prog, blocks, err := builtinKernel(alg, n, opts.Device.WarpWidth)
		if err != nil {
			return err
		}
		rep, err := sys.Lint(prog, blocks)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("%s n=%d", alg, n))
		reports = append(reports, rep)
	}
	for _, path := range files {
		m := analyze.FromConfig(opts.Device)
		rep, err := lintFile(path, blocksFlag, m, cp)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		names = append(names, path)
		reports = append(reports, rep)
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if jsonOut {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		for i, rep := range reports {
			fmt.Fprintf(out, "== %s ==\n%s", names[i], rep.Text())
		}
	}

	errors := 0
	for _, rep := range reports {
		errors += rep.ErrorCount()
	}
	if errors > 0 {
		return fmt.Errorf("lint: %d error finding(s) across %d kernel(s)", errors, len(reports))
	}
	return nil
}

// builtinKernel builds the named workload's kernel and launch block count
// for warp width b, mirroring how run would launch it.
func builtinKernel(alg string, n, b int) (*kernel.Program, int, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("non-positive n %d", n)
	}
	switch alg {
	case "vecadd":
		a := algorithms.VecAdd{N: n}
		prog, err := a.Kernel(b, 0, n, 2*n)
		return prog, a.Blocks(b), err
	case "reduce":
		// The first (largest) round: later rounds are the same kernel on
		// fewer blocks.
		a := algorithms.Reduce{N: n}
		prog, err := a.Kernel(b, 0, n, n)
		return prog, (n + b - 1) / b, err
	case "scan":
		// First (largest) level; data at 0, block sums after it.
		a := algorithms.Scan{N: n}
		prog, err := a.Kernel(b, 0, n, n)
		return prog, a.Blocks(b), err
	case "matmul":
		if n%b != 0 {
			return nil, 0, fmt.Errorf("matmul n=%d must be a multiple of warp width %d", n, b)
		}
		a := algorithms.MatMul{N: n}
		prog, err := a.Kernel(b, 0, n*n, 2*n*n)
		return prog, a.Blocks(b), err
	}
	return nil, 0, fmt.Errorf("unknown algorithm %q", alg)
}

// lintFile compiles one pseudocode file per its `#! lint:` directives and
// analyses it. The width directive overrides the device's warp width (the
// machine is narrowed to match); blocksFlag, when positive, overrides the
// blocks directive.
func lintFile(path string, blocksFlag int, m analyze.Machine, cp analyze.CostParams) (*analyze.Report, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir, err := pseudocode.Directives(string(src))
	if err != nil {
		return nil, err
	}
	width := m.Width
	blocks := 1
	params := make(map[string]int64)
	for k, v := range dir {
		switch k {
		case "blocks":
			blocks = int(v)
		case "width":
			width = int(v)
		default:
			params[k] = v
		}
	}
	if blocksFlag > 0 {
		blocks = blocksFlag
	}
	prog, err := pseudocode.CompileSource(string(src), width, params)
	if err != nil {
		return nil, err
	}
	m.Width = width
	return analyze.Program(prog, analyze.Options{Machine: m, Blocks: blocks, Cost: &cp})
}
