package main

import (
	"encoding/json"
	"fmt"
	"os"

	"atgpu"
	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/pseudocode"
)

// lintCmd statically analyses kernels without running them: either one
// built-in workload (via -alg/-n) or a list of pseudocode files, whose
// `#! lint:` directives supply block count and parameter bindings. Reports
// go to stdout (or -o) as text or, with -json, as a JSON array. Returns an
// error — exiting non-zero — when any kernel carries error-severity
// findings.
func lintCmd(files []string, alg string, n, blocksFlag int, jsonOut bool, outPath string, opts atgpu.Options) error {
	// Calibrate once so every report carries the Expression (1)/(2) cost
	// estimate alongside the findings.
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}
	cp := sys.CostParams()

	var names []string
	var reports []*analyze.Report
	if len(files) == 0 {
		prog, blocks, err := algorithms.BuiltinKernel(alg, n, opts.Device.WarpWidth)
		if err != nil {
			return err
		}
		rep, err := sys.Lint(prog, blocks)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("%s n=%d", alg, n))
		reports = append(reports, rep)
	}
	for _, path := range files {
		m := analyze.FromConfig(opts.Device)
		rep, err := lintFile(path, blocksFlag, m, cp)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		names = append(names, path)
		reports = append(reports, rep)
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if jsonOut {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := out.Write(data); err != nil {
			return err
		}
	} else {
		for i, rep := range reports {
			fmt.Fprintf(out, "== %s ==\n%s", names[i], rep.Text())
		}
	}

	errors := 0
	for _, rep := range reports {
		errors += rep.ErrorCount()
	}
	if errors > 0 {
		return fmt.Errorf("lint: %d error finding(s) across %d kernel(s)", errors, len(reports))
	}
	return nil
}

// lintFile compiles one pseudocode file per its `#! lint:` directives and
// analyses it. The width directive overrides the device's warp width (the
// machine is narrowed to match); blocksFlag, when positive, overrides the
// blocks directive.
func lintFile(path string, blocksFlag int, m analyze.Machine, cp analyze.CostParams) (*analyze.Report, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir, err := pseudocode.Directives(string(src))
	if err != nil {
		return nil, err
	}
	width := m.Width
	blocks := 1
	params := make(map[string]int64)
	for k, v := range dir {
		switch k {
		case "blocks":
			blocks = int(v)
		case "width":
			width = int(v)
		default:
			params[k] = v
		}
	}
	if blocksFlag > 0 {
		blocks = blocksFlag
	}
	prog, err := pseudocode.CompileSource(string(src), width, params)
	if err != nil {
		return nil, err
	}
	m.Width = width
	return analyze.Program(prog, analyze.Options{Machine: m, Blocks: blocks, Cost: &cp})
}
