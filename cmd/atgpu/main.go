// Command atgpu analyses algorithms on the ATGPU abstract model: it prints
// per-round metrics, evaluates the perfect-GPU and GPU cost functions,
// compares against the SWGPU baseline, and renders the paper's Table I.
//
// Usage:
//
//	atgpu table1
//	atgpu calibrate
//	atgpu analyze -alg vecadd|reduce|matmul -n N
//	atgpu lint    [-alg WORKLOAD -n N] [-blocks B] [-json] [-o out] [file.pseudo ...]
//	atgpu run     -alg vecadd|reduce|matmul -n N [--lint warn|error] [--fault-rate R --fault-seed S --max-retries K]
//	atgpu sweep   -alg WORKLOAD [-full] [--workers W] [--lint warn|error] [fault flags] [-o dir -run label]
//
// WORKLOAD for lint and sweep is any built-in kernel: the three paper
// workloads (vecadd, reduce, matmul) or the atomic workloads (histogram,
// histogram-priv, compact, topk, montecarlo — plus scan for lint). The
// atomic sweeps report the contention-priced cost estimate next to the
// simulated timing, so histogram vs histogram-priv shows the predicted
// and observed price of shared-counter serialisation side by side.
//
//	atgpu ooc     -n N -chunk C
//	atgpu results list|diff|compare|gate [-store results.jsonl] [flags]
//
// lint statically analyses kernels — shared-memory races, barrier
// divergence, out-of-bounds accesses, bank-conflict/coalescing prediction
// and an Expression (1)/(2) cost estimate — without running them, and exits
// non-zero on error-severity findings. It takes either a built-in workload
// (-alg/-n) or pseudocode files, whose `#! lint:` directives supply the
// block count and parameter bindings. With --lint warn|error, run and sweep
// additionally pre-flight every kernel launch: warn reports findings to
// stderr, error also refuses launches with error-severity findings.
//
// analyze prices the algorithm on the abstract model; run additionally
// executes it on the simulated GTX 650 and reports predicted-vs-observed.
// sweep runs the paper's full predicted-vs-observed size sweep for one
// workload, dispatching points to --workers goroutines (0 = all cores);
// its stdout is byte-identical for any worker count. With
// --fault-rate > 0, run and sweep inject deterministic seeded faults into
// transfers and launches and report the recovery work (retries, watchdog
// fires, degraded launches) alongside the timing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atgpu"
	"atgpu/internal/algorithms"
	"atgpu/internal/core"
	"atgpu/internal/experiments"
	"atgpu/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "results" {
		if err := resultsCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "atgpu:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	alg := fs.String("alg", "vecadd", "algorithm: vecadd, reduce, matmul; lint/sweep also take histogram, histogram-priv, compact, topk, montecarlo")
	n := fs.Int("n", 1_000_000, "input size (vector length / matrix side)")
	chunk := fs.Int("chunk", 1<<18, "out-of-core chunk size in words")
	full := fs.Bool("full", false, "sweep: use the paper's exact input sizes (minutes)")
	workers := fs.Int("workers", 0, "sweep: worker goroutines per sweep (0 = GOMAXPROCS, 1 = sequential)")
	pipeline := fs.Bool("pipeline", false, "run/sweep: chunked multi-stream pipelined schedule, sequential vs overlapped")
	chunks := fs.Int("chunks", 0, "pipeline: chunk (matmul band) count (0 = default 4)")
	faultRate := fs.Float64("fault-rate", 0, "fault injection probability in [0,1]; 0 disables")
	faultSeed := fs.Int64("fault-seed", 1, "fault injector seed (same seed replays the same faults)")
	maxRetries := fs.Int("max-retries", 0, "transfer retry budget override (0 = default)")
	traceOut := fs.String("trace", "", "run/sweep: write a Perfetto trace-event JSON of the simulated timeline to this file")
	metricsOut := fs.String("metrics", "", "run/sweep: write a Prometheus-text metrics snapshot to this file")
	traceMaxEvents := fs.Int("trace-max-events", 0, "cap on recorded trace events (0 = default 1048576)")
	lintMode := fs.String("lint", "", "run/sweep: static-analysis pre-flight: off, warn, or error (error refuses launches with error-severity findings)")
	lintBlocks := fs.Int("blocks", 0, "lint: override the launch block count for .pseudo files (0 = the file's #! lint: blocks directive, or 1)")
	jsonOut := fs.Bool("json", false, "lint: emit JSON reports instead of text")
	outPath := fs.String("o", "", "lint: write the report to this file; sweep: write canonical records to <dir>/records.jsonl")
	runLabel := fs.String("run", "local", "sweep: run label stamped on persisted records (-o)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "atgpu: negative workers %d\n", *workers)
		os.Exit(2)
	}
	if *traceMaxEvents < 0 {
		fmt.Fprintf(os.Stderr, "atgpu: negative trace-max-events %d\n", *traceMaxEvents)
		os.Exit(2)
	}

	opts := atgpu.DefaultOptions()
	opts.Workers = *workers
	opts.FaultRate = *faultRate
	opts.FaultSeed = *faultSeed
	opts.MaxRetries = *maxRetries
	opts.Chunks = *chunks
	opts.Trace = *traceOut != ""
	opts.Metrics = *metricsOut != ""
	opts.TraceMaxEvents = *traceMaxEvents
	mode, err := atgpu.ParseLintMode(*lintMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atgpu:", err)
		os.Exit(2)
	}
	opts.Lint = mode
	if mode != atgpu.LintOff {
		opts.LintWriter = os.Stderr
	}

	if cmd == "lint" {
		if err := lintCmd(fs.Args(), *alg, *n, *lintBlocks, *jsonOut, *outPath, opts); err != nil {
			fmt.Fprintln(os.Stderr, "atgpu:", err)
			os.Exit(1)
		}
		return
	}
	// SIGINT/SIGTERM cancels long sweeps between points; the sweep then
	// flushes the partial table, trace and metrics before exiting nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := dispatch(ctx, cmd, *alg, *n, *chunk, *full, *pipeline, opts, *traceOut, *metricsOut, *outPath, *runLabel); err != nil {
		fmt.Fprintln(os.Stderr, "atgpu:", err)
		os.Exit(1)
	}
}

// writeObs writes the run's unified trace and metrics to the requested
// paths, surfacing truncation — a truncated trace would otherwise be
// silently incomplete. No-op when neither path was requested.
func writeObs(rep *obs.Report, traceOut, metricsOut string) error {
	if traceOut == "" && metricsOut == "" {
		return nil
	}
	if rep == nil {
		return fmt.Errorf("no observability report collected (trace/metrics unsupported by this subcommand)")
	}
	if traceOut != "" {
		if err := rep.WriteTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "atgpu: trace: %d events -> %s\n", rep.Trace.Len(), traceOut)
		if rep.Trace.WasTruncated() {
			fmt.Fprintf(os.Stderr, "atgpu: warning: trace truncated at max-events=%d; raise --trace-max-events\n",
				rep.Trace.Cap())
		}
	}
	if metricsOut != "" {
		if err := rep.WriteMetricsFile(metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "atgpu: metrics -> %s\n", metricsOut)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: atgpu <command> [flags]

commands:
  table1      print the paper's Table I model comparison
  calibrate   print the calibrated cost parameters for the default device
  analyze     price an algorithm on the abstract model   (-alg, -n)
  lint        static analysis: races, barrier divergence, bounds,
              memory-performance and cost prediction      (-alg -n | file.pseudo ..., -blocks, -json, -o)
  run         predicted-vs-observed on the simulated GPU (-alg, -n)
  sweep       predicted-vs-observed size sweep           (-alg, -full, -workers, -o dir, -run label)
              workloads: vecadd reduce matmul histogram histogram-priv
              compact topk montecarlo (atomics carry contention pricing)
  ooc         out-of-core reduction, serial vs overlapped (-n, -chunk)
  results     query the canonical result store:
              list | diff -a runA -b runB | compare -a devA -b devB |
              gate trajectory-vs-fresh-BENCH regression check

static pre-flight (run, sweep): --lint warn reports findings for every
launched kernel to stderr; --lint error also refuses launches with
error-severity findings (races, divergent barriers, definite traps).

pipelining (run, sweep): --pipeline [--chunks C] compares the sequential
chunked schedule against the overlapped multi-stream schedule and reports
predicted vs simulated overlap savings.

fault injection (run, sweep): --fault-rate R --fault-seed S --max-retries K

observability (run, sweep): --trace out.json writes one Perfetto trace of
the whole run (host, streams, device blocks, transfers, faults on a single
simulated-time axis); --metrics out.prom writes a deterministic Prometheus
text snapshot; --trace-max-events caps trace growth.`)
}

func dispatch(ctx context.Context, cmd, alg string, n, chunk int, full, pipeline bool, opts atgpu.Options, traceOut, metricsOut, outDir, runLabel string) error {
	switch cmd {
	case "table1":
		fmt.Println("Table I — comparison of GPU abstract models")
		fmt.Print(atgpu.TableI())
		return nil
	case "calibrate":
		sys, err := atgpu.NewSystem(opts)
		if err != nil {
			return err
		}
		cp := sys.CostParams()
		fmt.Printf("gamma  (op rate)        %.6g op/s\n", cp.Gamma)
		fmt.Printf("lambda (global latency) %.6g cycles\n", cp.Lambda)
		fmt.Printf("sigma  (sync cost)      %.6g s\n", cp.Sigma)
		fmt.Printf("alpha  (transfer setup) %.6g s\n", cp.Alpha)
		fmt.Printf("beta   (per word)       %.6g s\n", cp.Beta)
		fmt.Printf("k'     (multiprocessors) %d\n", cp.KPrime)
		fmt.Printf("H      (blocks per SM)   %d\n", cp.H)
		return nil
	case "analyze":
		return analyzeCmd(alg, n, opts)
	case "run":
		if pipeline {
			return runPipelined(alg, n, opts, traceOut, metricsOut)
		}
		return run(alg, n, opts, traceOut, metricsOut)
	case "sweep":
		if pipeline {
			return sweepPipelined(ctx, alg, full, opts, traceOut, metricsOut, outDir, runLabel)
		}
		return sweep(ctx, alg, full, opts, traceOut, metricsOut, outDir, runLabel)
	case "ooc":
		return ooc(n, chunk, opts)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func predictionFor(sys *atgpu.System, alg string, n int) (*atgpu.Prediction, error) {
	switch alg {
	case "vecadd":
		return sys.AnalyzeVecAdd(n)
	case "reduce":
		return sys.AnalyzeReduce(n)
	case "matmul":
		return sys.AnalyzeMatMul(n)
	}
	return nil, fmt.Errorf("unknown algorithm %q", alg)
}

func analyzeCmd(alg string, n int, opts atgpu.Options) error {
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}
	pred, err := predictionFor(sys, alg, n)
	if err != nil {
		return err
	}
	a := pred.Analysis
	fmt.Printf("%s on %s\n", a.Name, a.Params)
	fmt.Printf("rounds R = %d\n", a.R())
	for i, r := range a.Rounds {
		if i < 5 || i == a.R()-1 {
			fmt.Printf("  round %d: t=%.0f q=%.0f blocks=%d shared=%d global=%d I=%d(Î=%d) O=%d(Ô=%d)\n",
				i+1, r.Time, r.IO, r.Blocks, r.SharedWords, r.GlobalWords,
				r.InWords, r.InTransactions, r.OutWords, r.OutTransactions)
		} else if i == 5 {
			fmt.Printf("  ... %d more rounds ...\n", a.R()-6)
		}
	}
	fmt.Printf("total transfer words Σ(I+O) = %d\n", a.TotalTransferWords())
	fmt.Printf("perfect-GPU cost (Expr 1) = %.6g s\n", pred.PerfectCost)
	fmt.Printf("GPU-cost (Expr 2)         = %.6g s\n", pred.GPUCost)
	fmt.Printf("SWGPU baseline cost       = %.6g s\n", pred.SWGPUCost)
	fmt.Printf("predicted transfer share ΔT = %.1f%%\n", 100*pred.TransferFraction)
	return nil
}

func run(alg string, n int, opts atgpu.Options, traceOut, metricsOut string) error {
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}
	pred, err := predictionFor(sys, alg, n)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	randWords := func(n int) []atgpu.Word {
		w := make([]atgpu.Word, n)
		for i := range w {
			w[i] = atgpu.Word(rng.Intn(2001) - 1000)
		}
		return w
	}

	var ob atgpu.Observation
	switch alg {
	case "vecadd":
		a, b := randWords(n), randWords(n)
		var c []atgpu.Word
		if c, ob, err = sys.RunVecAdd(a, b); err != nil {
			return err
		}
		want, _ := algorithms.VecAddReference(a, b)
		for i := range want {
			if c[i] != want[i] {
				return fmt.Errorf("verification failed at %d", i)
			}
		}
	case "reduce":
		in := randWords(n)
		var sum atgpu.Word
		if sum, ob, err = sys.RunReduce(in); err != nil {
			return err
		}
		if sum != algorithms.ReduceReference(in) {
			return fmt.Errorf("verification failed: %d", sum)
		}
	case "matmul":
		a, b := randWords(n*n), randWords(n*n)
		var c []atgpu.Word
		if c, ob, err = sys.RunMatMul(a, b, n); err != nil {
			return err
		}
		want, _ := algorithms.MatMulReference(a, b, n)
		for i := range want {
			if c[i] != want[i] {
				return fmt.Errorf("verification failed at %d", i)
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	fmt.Printf("%s n=%d (verified against CPU reference)\n", alg, n)
	fmt.Printf("observed:  total=%v kernel=%v transfer=%v sync=%v rounds=%d\n",
		ob.Total, ob.Kernel, ob.Transfer, ob.Sync, ob.Rounds)
	fmt.Printf("predicted: GPU-cost=%.6gs SWGPU=%.6gs\n", pred.GPUCost, pred.SWGPUCost)
	fmt.Printf("ΔE (observed transfer share)  = %.1f%%\n", 100*ob.TransferFraction)
	fmt.Printf("ΔT (predicted transfer share) = %.1f%%\n", 100*pred.TransferFraction)
	fmt.Printf("kernel stats:\n%s\n", ob.Stats)
	if ob.Transfers.Faulted() || ob.Resilience.Degraded() {
		fmt.Printf("resilience: %d retries (%d words re-sent, backoff %v), %d corruptions, %d drops, %d stalls\n",
			ob.Transfers.Retries, ob.Transfers.RetransferredWords, ob.Transfers.BackoffTime,
			ob.Transfers.CorruptionsDetected, ob.Transfers.DroppedTransactions, ob.Transfers.StallEvents)
		fmt.Printf("            %d watchdog fires (%v lost), %d relaunches, %d degraded launches, %d failed SMs\n",
			ob.Resilience.WatchdogFires, ob.Resilience.WatchdogTime, ob.Resilience.Relaunches,
			ob.Resilience.DegradedLaunches, ob.Resilience.FailedSMs)
		for _, ev := range ob.FaultLog {
			fmt.Printf("  fault %s\n", ev)
		}
	}
	return writeObs(ob.Report, traceOut, metricsOut)
}

// runPipelined executes one workload's sequential-chunked and overlapped
// multi-stream schedules on identical inputs and reports the observed
// saving alongside the overlapped-cost model's prediction.
func runPipelined(alg string, n int, opts atgpu.Options, traceOut, metricsOut string) error {
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	randWords := func(n int) []atgpu.Word {
		w := make([]atgpu.Word, n)
		for i := range w {
			w[i] = atgpu.Word(rng.Intn(2001) - 1000)
		}
		return w
	}

	var pr atgpu.PipelineRun
	var pc core.PipelinedCost
	switch alg {
	case "vecadd":
		a, b := randWords(n), randWords(n)
		var c []atgpu.Word
		if c, pr, err = sys.RunVecAddPipelined(a, b); err != nil {
			return err
		}
		want, _ := algorithms.VecAddReference(a, b)
		for i := range want {
			if c[i] != want[i] {
				return fmt.Errorf("verification failed at %d", i)
			}
		}
		if pc, err = sys.AnalyzeVecAddPipelined(n); err != nil {
			return err
		}
	case "reduce":
		in := randWords(n)
		var sum atgpu.Word
		if sum, pr, err = sys.RunReducePipelined(in); err != nil {
			return err
		}
		if sum != algorithms.ReduceReference(in) {
			return fmt.Errorf("verification failed: %d", sum)
		}
		if pc, err = sys.AnalyzeReducePipelined(n); err != nil {
			return err
		}
	case "matmul":
		a, b := randWords(n*n), randWords(n*n)
		var c []atgpu.Word
		if c, pr, err = sys.RunMatMulPipelined(a, b, n); err != nil {
			return err
		}
		want, _ := algorithms.MatMulReference(a, b, n)
		for i := range want {
			if c[i] != want[i] {
				return fmt.Errorf("verification failed at %d", i)
			}
		}
		if pc, err = sys.AnalyzeMatMulPipelined(n); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	fmt.Printf("%s n=%d pipelined (chunks=%d, streams=%d, verified against CPU reference)\n",
		alg, n, pr.Chunks, pr.Streams)
	fmt.Printf("sequential schedule: total=%v kernel=%v transfer=%v sync=%v\n",
		pr.Sequential.Total, pr.Sequential.Kernel, pr.Sequential.Transfer, pr.Sequential.Sync)
	fmt.Printf("pipelined schedule:  total=%v kernel=%v transfer=%v sync=%v\n",
		pr.Pipelined.Total, pr.Pipelined.Kernel, pr.Pipelined.Transfer, pr.Pipelined.Sync)
	fmt.Printf("observed saving:  %v (%.1f%%)\n", pr.Saving, 100*pr.SavingFraction())
	fmt.Printf("predicted: sequential=%.6gs pipelined=%.6gs saving=%.6gs (%.1f%%)\n",
		pc.Sequential, pc.Pipelined, pc.Saving(), 100*pc.SavingFraction())
	return writeObs(pr.Report, traceOut, metricsOut)
}

// sweepPipelined runs one workload's sequential-versus-pipelined size
// sweep. Stdout is byte-identical for any --workers value. On SIGINT the
// completed points, trace and metrics are still flushed before the
// cancellation error propagates.
func sweepPipelined(ctx context.Context, alg string, full bool, opts atgpu.Options, traceOut, metricsOut, outDir, runLabel string) error {
	cfg := opts.ExperimentConfig()
	cfg.Full = full
	cfg.Context = ctx
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	var data *experiments.PipelineData
	switch alg {
	case "vecadd":
		data, err = r.RunVecAddPipelined()
	case "reduce":
		data, err = r.RunReducePipelined()
	case "matmul":
		data, err = r.RunMatMulPipelined()
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	cancelled := errors.Is(err, experiments.ErrCancelled)
	if err != nil && !cancelled {
		return err
	}
	fmt.Fprintf(os.Stderr, "atgpu: %s pipelined sweep: %d sizes in %.1fs (workers=%d)\n",
		alg, len(data.Points), time.Since(start).Seconds(), opts.Workers)

	first := experiments.PipelinePoint{}
	if len(data.Points) > 0 {
		first = data.Points[0]
	}
	fmt.Printf("%s pipelined sweep (%d sizes, chunks=%d, streams=%d)\n",
		alg, len(data.Points), first.Chunks, first.Streams)
	fmt.Printf("%12s %14s %14s %9s %14s %14s %9s\n",
		"n", "seq(s)", "pipe(s)", "saved", "pred-seq(s)", "pred-pipe(s)", "pred-saved")
	for _, p := range data.Points {
		if p.Failed {
			fmt.Printf("%12d FAILED: %s\n", p.N, p.Err)
			continue
		}
		fmt.Printf("%12d %14.6g %14.6g %8.1f%% %14.6g %14.6g %8.1f%%\n",
			p.N, p.SequentialTime, p.PipelinedTime, 100*p.ObservedSavingFraction(),
			p.PredictedSequential, p.PredictedPipelined, 100*p.PredictedSavingFraction())
	}
	if werr := writeObs(data.Obs, traceOut, metricsOut); werr != nil {
		return werr
	}
	if werr := persistSweepRecords(outDir, runLabel, data.Records, opts.Workers, time.Since(start)); werr != nil {
		return werr
	}
	if cancelled {
		return sweepInterrupted(data.Points, func(i int) bool { return data.Points[i].Failed })
	}
	return nil
}

// sweep runs one workload's full predicted-vs-observed size sweep through
// the experiments runner. The points table and summary go to stdout, which
// is byte-identical for any --workers value; the wall-clock line goes to
// stderr so the deterministic output can be diffed or checksummed. On
// SIGINT the completed points, trace and metrics are still flushed (the
// summary is skipped — it would describe a truncated sweep) before the
// cancellation error propagates.
func sweep(ctx context.Context, alg string, full bool, opts atgpu.Options, traceOut, metricsOut, outDir, runLabel string) error {
	cfg := opts.ExperimentConfig()
	cfg.Full = full
	cfg.Context = ctx
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	var data *experiments.WorkloadData
	switch alg {
	case "vecadd":
		data, err = r.RunVecAdd()
	case "reduce":
		data, err = r.RunReduce()
	case "matmul":
		data, err = r.RunMatMul()
	case "histogram":
		data, err = r.RunHistogram(false)
	case "histogram-priv":
		data, err = r.RunHistogram(true)
	case "compact":
		data, err = r.RunCompact()
	case "topk":
		data, err = r.RunTopK()
	case "montecarlo":
		data, err = r.RunMonteCarlo()
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	cancelled := errors.Is(err, experiments.ErrCancelled)
	if err != nil && !cancelled {
		return err
	}
	fmt.Fprintf(os.Stderr, "atgpu: %s sweep: %d sizes in %.1fs (workers=%d)\n",
		alg, len(data.Points), time.Since(start).Seconds(), opts.Workers)

	fmt.Printf("%s sweep (%d sizes)\n", alg, len(data.Points))
	fmt.Printf("%12s %14s %14s %14s %8s %8s %s\n",
		"n", "total(s)", "kernel(s)", "ATGPU(s)", "ΔE", "ΔT", "status")
	for _, p := range data.Points {
		status := "ok"
		if p.Failed {
			status = "FAILED: " + p.Err
		} else if p.Degraded() {
			status = "degraded"
		}
		fmt.Printf("%12d %14.6g %14.6g %14.6g %7.1f%% %7.1f%% %s\n",
			p.N, p.TotalTime, p.KernelTime, p.ATGPUCost,
			100*p.DeltaObserved, 100*p.DeltaPredicted, status)
	}
	if !cancelled {
		s, err := experiments.Summarise(data)
		if err != nil {
			return err
		}
		fmt.Print(s.String())
	}
	if werr := writeObs(data.Obs, traceOut, metricsOut); werr != nil {
		return werr
	}
	if werr := persistSweepRecords(outDir, runLabel, data.Records, opts.Workers, time.Since(start)); werr != nil {
		return werr
	}
	if cancelled {
		return sweepInterrupted(data.Points, func(i int) bool { return data.Points[i].Failed })
	}
	return nil
}

// sweepInterrupted builds the nonzero-exit error for a cancelled sweep,
// after the partial table and observability files have been flushed.
func sweepInterrupted[T any](points []T, failed func(i int) bool) error {
	done := 0
	for i := range points {
		if !failed(i) {
			done++
		}
	}
	return fmt.Errorf("interrupted: %d of %d points completed (partial results flushed): %w",
		done, len(points), experiments.ErrCancelled)
}

func ooc(n, chunk int, opts atgpu.Options) error {
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	in := make([]atgpu.Word, n)
	for i := range in {
		in[i] = atgpu.Word(rng.Intn(2))
	}
	res, err := sys.RunOutOfCoreReduce(in, chunk)
	if err != nil {
		return err
	}
	if res.Sum != algorithms.ReduceReference(in) {
		return fmt.Errorf("verification failed: %d", res.Sum)
	}
	fmt.Printf("out-of-core reduce n=%d chunk=%d (%d chunks, verified)\n", n, chunk, res.Chunks)
	fmt.Printf("serial schedule:     %v (transfer %v, kernel %v)\n",
		res.SerialTime, res.TransferTime, res.KernelTime)
	fmt.Printf("overlapped schedule: %v\n", res.OverlappedTime)
	fmt.Printf("overlap speedup:     %.2fx\n", res.Speedup())
	return nil
}
