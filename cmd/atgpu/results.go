package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"atgpu/internal/results"
)

// resultsCmd dispatches the `atgpu results` subcommands over the
// append-only JSONL result store:
//
//	atgpu results list    -store results.jsonl [-kind K] [-workload W] [-machine M] [-run R]
//	atgpu results diff    -store results.jsonl -a runA -b runB [-format text|markdown|json]
//	atgpu results compare -store results.jsonl -a devA -b devB [-format ...]
//	atgpu results gate    -store trajectory.jsonl [-max-regress 0.15] [-append] [-run label] [-allowance F] BENCH*.json
//
// diff aligns two run labels' records by identity key; compare aligns
// two machine presets (device names), blanking the machine from the
// key so the same measurement on different simulated hardware lines
// up. gate checks fresh BENCH_*.json artifacts against the stored
// trajectory and exits nonzero on any regression beyond the limit.
func resultsCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: atgpu results list|diff|compare|gate [flags]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("results "+sub, flag.ExitOnError)
	store := fs.String("store", "results.jsonl", "result store path")
	kind := fs.String("kind", "", "list: filter by record kind")
	workload := fs.String("workload", "", "list: filter by workload")
	machine := fs.String("machine", "", "list: filter by device name")
	run := fs.String("run", "", "list: filter by run label; gate: label for -append")
	a := fs.String("a", "", "diff/compare: side A (run label, or device name for compare)")
	b := fs.String("b", "", "diff/compare: side B")
	format := fs.String("format", "text", "diff/compare: text, markdown or json")
	maxRegress := fs.Float64("max-regress", 0.15, "gate: default allowed fractional slowdown")
	appendFresh := fs.Bool("append", false, "gate: append passing fresh results to the store")
	allowance := fs.Float64("allowance", 0, "gate -append: allowance stored on benchmarks with no prior trajectory (0 = gate default)")
	if err := fs.Parse(rest); err != nil {
		return err
	}

	switch sub {
	case "list":
		return resultsList(*store, results.Filter{
			Kind: *kind, Workload: *workload, Machine: *machine, Run: *run,
		})
	case "diff", "compare":
		if *a == "" || *b == "" {
			return fmt.Errorf("results %s needs -a and -b", sub)
		}
		return resultsDiff(*store, sub, *a, *b, *format)
	case "gate":
		return resultsGate(*store, fs.Args(), *maxRegress, *allowance, *appendFresh, *run)
	}
	return fmt.Errorf("unknown results subcommand %q (want list, diff, compare or gate)", sub)
}

// resultsList prints the matching entries, append order, one line each.
func resultsList(path string, f results.Filter) error {
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	defer s.Close()
	entries := s.Query(f)
	fmt.Printf("%s: %d of %d entries\n", path, len(entries), s.Len())
	for _, e := range entries {
		r := e.Record
		line := fmt.Sprintf("%-9s %-28s", r.Kind, recordLabel(r))
		if v, unit, ok := r.Metric(); ok {
			line += fmt.Sprintf(" %14.6g %-5s", v, unit)
		} else {
			line += fmt.Sprintf(" %14s %-5s", "-", "")
		}
		if r.Run != "" {
			line += " run=" + r.Run
		}
		if r.Git != "" {
			line += " git=" + r.Git
		}
		if r.Failed {
			line += " FAILED"
		}
		fmt.Println(line)
	}
	return nil
}

// recordLabel compresses a record's identity for the list view.
func recordLabel(r results.Record) string {
	l := r.Workload
	if r.Machine != nil && r.Machine.Device.Name != "" {
		l += " [" + r.Machine.Device.Name + "]"
	}
	if r.N > 0 {
		l += fmt.Sprintf(" n=%d", r.N)
	}
	if r.Chunks > 0 {
		l += fmt.Sprintf(" c=%d", r.Chunks)
	}
	return l
}

// resultsDiff renders the comparison of two runs (mode "diff") or two
// machine presets (mode "compare") from one store.
func resultsDiff(path, mode, a, b, format string) error {
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	defer s.Close()
	var ea, eb []results.Entry
	opts := results.CompareOptions{}
	if mode == "compare" {
		ea = s.Query(results.Filter{Machine: a})
		eb = s.Query(results.Filter{Machine: b})
		opts.IgnoreMachine = true
	} else {
		ea = s.Query(results.Filter{Run: a})
		eb = s.Query(results.Filter{Run: b})
	}
	if len(ea) == 0 {
		return fmt.Errorf("no entries for %q in %s", a, path)
	}
	if len(eb) == 0 {
		return fmt.Errorf("no entries for %q in %s", b, path)
	}
	rep := results.Compare(ea, eb, a, b, opts)
	return rep.Write(os.Stdout, format)
}

// resultsGate compares fresh BENCH_*.json artifacts against the stored
// trajectory. Regressions print and exit nonzero; with -append, the
// fresh measurements (all of them — the gate already passed) extend
// the trajectory, carrying each benchmark's stored allowance forward
// (benchmarks seen for the first time get defAllowance).
func resultsGate(path string, files []string, maxRegress, defAllowance float64, appendFresh bool, run string) error {
	if len(files) == 0 {
		return fmt.Errorf("results gate needs BENCH_*.json files to check")
	}
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	defer s.Close()

	var fresh []results.BenchResult
	for _, f := range files {
		parsed, err := results.ParseBenchFile(f)
		if err != nil {
			return err
		}
		fmt.Printf("gate: %s: %d benchmarks\n", f, len(parsed))
		fresh = append(fresh, parsed...)
	}

	regressions := results.Gate(s, fresh, maxRegress)
	for _, r := range regressions {
		fmt.Printf("REGRESSION %s\n", r)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed beyond their limit", len(regressions), len(fresh))
	}
	fmt.Printf("gate: %d benchmarks within limits (default +%.0f%%)\n", len(fresh), 100*maxRegress)

	if appendFresh {
		host, _ := os.Hostname()
		env := &results.Env{SavedUnix: time.Now().Unix(), Host: host, Note: "gate append"}
		git := results.GitDescribe("")
		for _, bench := range fresh {
			allowance := defAllowance
			if base, ok := s.Latest(results.Filter{Kind: "bench", Workload: bench.Name}); ok &&
				base.Record.Bench != nil {
				allowance = base.Record.Bench.Allowance
			}
			rec := bench.Record(run, allowance)
			rec.Git = git
			if err := s.Append(rec, env); err != nil {
				return err
			}
		}
		fmt.Printf("gate: appended %d fresh measurements to %s\n", len(fresh), path)
	}
	return nil
}

// persistSweepRecords writes a sweep's canonical records to
// <dir>/records.jsonl, stamping the run label, git describe, worker
// count and wall-clock envelope at this persist boundary (the sweep
// data itself stays byte-identical across workers and commits).
func persistSweepRecords(dir, run string, recs []results.Record, workers int, wall time.Duration) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "records.jsonl")
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	git := results.GitDescribe("")
	host, _ := os.Hostname()
	env := &results.Env{
		SavedUnix: time.Now().Unix(),
		Host:      host,
		WallMs:    float64(wall.Milliseconds()),
		Note:      run,
	}
	for _, rec := range recs {
		rec.Run = run
		rec.Git = git
		rec.Workers = workers
		if err := s.Append(rec, env); err != nil {
			s.Close()
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "atgpu: %d records -> %s\n", len(recs), path)
	return nil
}
