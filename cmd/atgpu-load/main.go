// Command atgpu-load drives a running atgpud with synthetic job traffic
// and reports latency percentiles and throughput — the harness behind
// the CI service gate and BENCH_service.json.
//
// Usage:
//
//	atgpu-load [-url http://127.0.0.1:8080] [-mode latency|throughput|concurrency]
//	           [-n 100] [-c 4] [-kind run] [-workload vecadd] [-size 256]
//	           [-device tiny] [-same] [-json] [-o out.json] [-check]
//
// Modes:
//
//	latency      n requests over c clients; reports p50/p95/p99 per-job
//	             round-trip latency (submit with wait=true → terminal).
//	throughput   same machinery, reported as completed jobs per second.
//	concurrency  sweeps client counts 1, 2, 4, … up to c and reports one
//	             row per level, showing how the daemon degrades.
//
// Every request varies its seed (so each job is distinct content and the
// cache cannot short-circuit the load); -same pins one seed instead,
// stressing the single-flight cache path. 429/503 answers are retried
// with backoff and counted separately — backpressure is the daemon
// working, not an error.
//
// With -check, the harness exits non-zero if any job ended in a
// non-success state or if the daemon leaked non-terminal jobs after the
// run — the CI gate.
//
// The harness also scrapes GET /metrics before and after every level and
// folds the daemon's own view of that window — mean queue wait, mean
// execute-phase latency, rejections, cache hits/misses — into each level
// of the JSON report, so BENCH_service.json carries both the client-side
// and the server-side account of the same run. A daemon without /metrics
// (or an unparsable exposition) simply omits the server view.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"atgpu/internal/obs"
	"atgpu/internal/service"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "atgpud base URL")
	mode := flag.String("mode", "latency", "latency, throughput or concurrency")
	n := flag.Int("n", 100, "total requests per level")
	c := flag.Int("c", 4, "concurrent clients (max level in concurrency mode)")
	kind := flag.String("kind", "run", "job kind: run, sweep, pipeline, analyze or lint")
	workload := flag.String("workload", "vecadd", "workload: vecadd, reduce or matmul")
	size := flag.Int("size", 256, "input size n for run/analyze/lint kinds")
	device := flag.String("device", "tiny", "device preset: gtx650, gtx1080, k40 or tiny")
	timeoutMs := flag.Int("timeout-ms", 30_000, "per-job deadline sent with each request")
	same := flag.Bool("same", false, "send identical requests (one seed) instead of distinct ones")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	check := flag.Bool("check", false, "exit non-zero on any failed job or leaked non-terminal job")
	flag.Parse()

	if *n <= 0 || *c <= 0 {
		fmt.Fprintln(os.Stderr, "atgpu-load: -n and -c must be positive")
		os.Exit(2)
	}
	var levels []int
	switch *mode {
	case "latency", "throughput":
		levels = []int{*c}
	case "concurrency":
		for l := 1; l <= *c; l *= 2 {
			levels = append(levels, l)
		}
		if levels[len(levels)-1] != *c {
			levels = append(levels, *c)
		}
	default:
		fmt.Fprintf(os.Stderr, "atgpu-load: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	tmpl := service.Request{
		Kind:      *kind,
		Workload:  *workload,
		N:         *size,
		Device:    *device,
		TimeoutMs: *timeoutMs,
		Wait:      true,
	}
	rep := report{Mode: *mode, URL: *url, Request: tmpl}
	for _, lvl := range levels {
		before := scrapeMetrics(*url)
		lr := runLevel(*url, tmpl, *n, lvl, !*same)
		lr.Server = serverDelta(before, scrapeMetrics(*url))
		rep.Levels = append(rep.Levels, lr)
	}
	for _, l := range rep.Levels {
		rep.OK += l.OK
		rep.Failed += l.Failed
		rep.Rejected += l.Rejected
	}
	if rep.OK+rep.Failed > 0 {
		rep.ErrorRate = float64(rep.Failed) / float64(rep.OK+rep.Failed)
	}
	rep.NonTerminalAfter, rep.Stats = drainCheck(*url)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atgpu-load: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if *jsonOut {
		data, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Fprintf(out, "%s\n", data)
	} else {
		rep.print(out)
	}

	if *check && (rep.Failed > 0 || rep.NonTerminalAfter > 0) {
		fmt.Fprintf(os.Stderr, "atgpu-load: CHECK FAILED: %d failed jobs, %d non-terminal leaked\n",
			rep.Failed, rep.NonTerminalAfter)
		os.Exit(1)
	}
}

// report is the full harness output.
type report struct {
	Mode             string               `json:"mode"`
	URL              string               `json:"url"`
	Request          service.Request      `json:"request"`
	Levels           []levelReport        `json:"levels"`
	OK               int                  `json:"ok"`
	Failed           int                  `json:"failed"`
	Rejected         int                  `json:"rejected"`
	ErrorRate        float64              `json:"error_rate"`
	NonTerminalAfter int                  `json:"non_terminal_after"`
	Stats            *service.ServerStats `json:"server_stats,omitempty"`
}

func (r report) print(w io.Writer) {
	fmt.Fprintf(w, "atgpu-load %s against %s\n", r.Mode, r.URL)
	fmt.Fprintf(w, "%4s %6s %6s %6s %8s %9s %9s %9s %10s\n",
		"c", "ok", "fail", "429s", "secs", "p50(ms)", "p95(ms)", "p99(ms)", "jobs/s")
	for _, l := range r.Levels {
		fmt.Fprintf(w, "%4d %6d %6d %6d %8.2f %9.2f %9.2f %9.2f %10.1f",
			l.C, l.OK, l.Failed, l.Rejected, l.DurationS, l.P50ms, l.P95ms, l.P99ms, l.JobsPerSec)
		if s := l.Server; s != nil {
			fmt.Fprintf(w, "  [srv wait=%.2fms exec=%.2fms hits=%d misses=%d]",
				s.QueueWaitMsMean, s.ExecMsMean, s.CacheHits, s.CacheMisses)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "total ok=%d failed=%d rejected=%d error_rate=%.4f non_terminal_after=%d\n",
		r.OK, r.Failed, r.Rejected, r.ErrorRate, r.NonTerminalAfter)
}

// levelReport is one concurrency level's outcome.
type levelReport struct {
	C          int     `json:"c"`
	N          int     `json:"n"`
	OK         int     `json:"ok"`
	Failed     int     `json:"failed"`
	Rejected   int     `json:"rejected"`
	CacheHits  int     `json:"cache_hits"`
	DurationS  float64 `json:"duration_s"`
	P50ms      float64 `json:"p50_ms"`
	P95ms      float64 `json:"p95_ms"`
	P99ms      float64 `json:"p99_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Server is the daemon's own account of this level, from /metrics
	// deltas; nil when the daemon does not serve metrics.
	Server *serverView `json:"server,omitempty"`
	// Errors samples the first few failure messages for diagnosis.
	Errors []string `json:"errors,omitempty"`
}

// serverView is the server-side account of one level: the delta between
// the /metrics scrapes bracketing it.
type serverView struct {
	QueueWaitMsMean float64 `json:"queue_wait_ms_mean"`
	ExecMsMean      float64 `json:"exec_ms_mean"`
	JobsSucceeded   int64   `json:"jobs_succeeded"`
	Rejected        int64   `json:"rejected"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
// Best-effort: any failure yields nil and the report omits the server
// view rather than failing the load run.
func scrapeMetrics(url string) *obs.PromExposition {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	exp, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atgpu-load: /metrics exposition invalid: %v\n", err)
		return nil
	}
	return exp
}

// counterDelta reads a counter family's total from both scrapes,
// optionally filtered to one label value, and returns the difference.
func counterDelta(before, after *obs.PromExposition, family, labelKey, labelVal string) int64 {
	total := func(exp *obs.PromExposition) float64 {
		f := exp.Family(family)
		if f == nil {
			return 0
		}
		sum := 0.0
		for _, s := range f.Samples {
			if labelKey != "" && s.Label(labelKey) != labelVal {
				continue
			}
			sum += s.Value
		}
		return sum
	}
	return int64(total(after) - total(before))
}

// histogramMeanMs returns the mean of a latency histogram family over
// the window between the two scrapes, in milliseconds.
func histogramMeanMs(before, after *obs.PromExposition, family string) float64 {
	c0, s0, _ := before.HistogramTotal(family)
	c1, s1, ok := after.HistogramTotal(family)
	if !ok || c1-c0 <= 0 {
		return 0
	}
	return (s1 - s0) / (c1 - c0) / 1e6
}

// serverDelta folds two scrapes into the level's server-side view.
func serverDelta(before, after *obs.PromExposition) *serverView {
	if before == nil || after == nil {
		return nil
	}
	return &serverView{
		QueueWaitMsMean: histogramMeanMs(before, after, service.MetricQueueWaitNs),
		ExecMsMean:      histogramMeanMs(before, after, service.MetricExecNs),
		JobsSucceeded:   counterDelta(before, after, service.MetricJobsTotal, "state", "success"),
		Rejected:        counterDelta(before, after, service.MetricRejectedTotal, "", ""),
		CacheHits:       counterDelta(before, after, service.MetricCacheHitsTotal, "", ""),
		CacheMisses:     counterDelta(before, after, service.MetricCacheMissesTotal, "", ""),
	}
}

// runLevel drives n requests through c concurrent clients and collects
// per-job round-trip latencies.
func runLevel(url string, tmpl service.Request, n, c int, distinct bool) levelReport {
	rep := levelReport{C: c, N: n}
	var mu sync.Mutex
	var lats []float64

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := fmt.Sprintf("load-w%d", worker)
			for i := range work {
				req := tmpl
				if distinct {
					// Distinct content per request: the cache cannot
					// serve it, so the daemon really simulates.
					req.Seed = int64(i + 1)
				}
				ok, hit, rejections, errMsg, lat := oneJob(url, client, req)
				mu.Lock()
				rep.Rejected += rejections
				if ok {
					rep.OK++
					lats = append(lats, lat.Seconds()*1000)
					if hit {
						rep.CacheHits++
					}
				} else {
					rep.Failed++
					if len(rep.Errors) < 5 {
						rep.Errors = append(rep.Errors, errMsg)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	rep.DurationS = time.Since(start).Seconds()

	sort.Float64s(lats)
	rep.P50ms = percentile(lats, 50)
	rep.P95ms = percentile(lats, 95)
	rep.P99ms = percentile(lats, 99)
	if rep.DurationS > 0 {
		rep.JobsPerSec = float64(rep.OK) / rep.DurationS
	}
	return rep
}

// oneJob submits one synchronous job, retrying backpressure answers
// (429/503) with a short backoff. It returns success, whether the result
// was a cache hit, how many times it was pushed back, a failure message,
// and the accepted attempt's round-trip latency.
func oneJob(url, client string, req service.Request) (ok, hit bool, rejections int, errMsg string, lat time.Duration) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, false, rejections, err.Error(), 0
	}
	for attempt := 0; attempt < 50; attempt++ {
		start := time.Now()
		hreq, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return false, false, rejections, err.Error(), 0
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return false, false, rejections, err.Error(), 0
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return false, false, rejections, err.Error(), 0
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Backpressure working as designed: back off and retry.
			rejections++
			time.Sleep(time.Duration(20*(attempt+1)) * time.Millisecond)
			continue
		case http.StatusOK:
			var job service.Job
			if err := json.Unmarshal(data, &job); err != nil {
				return false, false, rejections, err.Error(), 0
			}
			if job.State == service.StateSuccess {
				return true, job.CacheHit, rejections, "", time.Since(start)
			}
			return false, false, rejections,
				fmt.Sprintf("job %s ended %s: %s", job.ID, job.State, job.Error), 0
		default:
			return false, false, rejections,
				fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data)), 0
		}
	}
	return false, false, rejections, "gave up after 50 backpressure retries", 0
}

// drainCheck polls /v1/stats until the daemon reports no non-terminal
// jobs (or a bounded wait expires) and returns the final count and
// stats — the leak gate.
func drainCheck(url string) (int, *service.ServerStats) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err := fetchStats(url)
		if err != nil {
			return -1, nil
		}
		if stats.NonTerminal == 0 || time.Now().After(deadline) {
			return stats.NonTerminal, stats
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fetchStats(url string) (*service.ServerStats, error) {
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var stats service.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// percentile reads the p-th percentile from sorted ms latencies.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
