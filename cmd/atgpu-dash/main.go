// Command atgpu-dash generates the Grafana dashboard for a running
// atgpud and (optionally) verifies it against a live /metrics endpoint.
//
// Usage:
//
//	atgpu-dash [-o dashboard.json] [-datasource UID]
//	           [-check-metrics http://localhost:8080/metrics] [-strict]
//
// The dashboard JSON is importable via Grafana's "Dashboards → Import";
// by default it declares a Prometheus datasource input so the importer
// prompts for one. With -check-metrics the tool scrapes the given URL,
// validates the exposition with the repo's strict parser, and checks
// that the families the dashboard queries are served. Families that only
// materialise with traffic (histograms, transition counters) are
// reported but only fail the check under -strict; families the daemon
// exports unconditionally must always be present.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"atgpu/internal/obs"
	"atgpu/internal/service"
)

// alwaysExported lists the dashboard families atgpud serves on every
// scrape regardless of traffic (live gauges and absolute cache
// counters). The rest appear once the corresponding event has happened.
var alwaysExported = map[string]bool{
	service.MetricJobsInflight:     true,
	service.MetricQueueDepth:       true,
	service.MetricQueueCapacity:    true,
	service.MetricCacheHitsTotal:   true,
	service.MetricCacheMissesTotal: true,
	service.MetricDraining:         true,
	service.MetricDrainRemaining:   true,
	service.MetricPointsInflight:   true,
	service.MetricTraceRingEntries: true,
	service.MetricUptimeSeconds:    true,
}

func main() {
	out := flag.String("o", "", "write the dashboard JSON here (default stdout)")
	datasource := flag.String("datasource", "", "Prometheus datasource UID (default: prompt on import)")
	check := flag.String("check-metrics", "", "scrape this /metrics URL and verify the dashboard's families")
	strict := flag.Bool("strict", false, "with -check-metrics: fail on any missing family, even traffic-dependent ones")
	flag.Parse()

	if err := run(*out, *datasource, *check, *strict); err != nil {
		fmt.Fprintf(os.Stderr, "atgpu-dash: %v\n", err)
		os.Exit(1)
	}
}

func run(out, datasource, check string, strict bool) error {
	doc, err := service.DashboardJSON(datasource)
	if err != nil {
		return err
	}
	if out == "" {
		if _, err := os.Stdout.Write(doc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "atgpu-dash: wrote %s (%d bytes, %d families)\n",
			out, len(doc), len(service.DashboardMetricFamilies()))
	}
	if check == "" {
		return nil
	}
	return checkMetrics(check, strict)
}

// checkMetrics scrapes url, parses it with the strict exposition parser,
// and verifies the dashboard's metric families are served.
func checkMetrics(url string, strict bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	exp, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}

	var missing, pending []string
	for _, family := range service.DashboardMetricFamilies() {
		if exp.Family(family) != nil {
			continue
		}
		if alwaysExported[family] {
			missing = append(missing, family)
		} else {
			pending = append(pending, family)
		}
	}
	sort.Strings(missing)
	sort.Strings(pending)
	for _, f := range pending {
		fmt.Fprintf(os.Stderr, "atgpu-dash: family %s not yet exported (needs traffic)\n", f)
	}
	if len(missing) > 0 {
		return fmt.Errorf("families missing from %s: %v", url, missing)
	}
	if strict && len(pending) > 0 {
		return fmt.Errorf("families awaiting traffic (strict): %v", pending)
	}
	fmt.Fprintf(os.Stderr, "atgpu-dash: %s serves %d families, %d dashboard families verified\n",
		url, len(exp.Families), len(service.DashboardMetricFamilies())-len(pending))
	return nil
}
