// Command bench2json converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line:
//
//	go test -bench BenchmarkSweepWorkers ./internal/experiments | bench2json > BENCH_sweep.json
//
// Each object carries the benchmark name (procs suffix stripped into its
// own field), iteration count and ns/op — plus bytes_per_op and
// allocs_per_op when the benchmark ran with -benchmem or b.ReportAllocs
// (the observability overhead benches rely on these to prove the
// disabled path allocates nothing) — so CI artifacts can be diffed and
// plotted without re-parsing the bench text format.
//
// With -baseline FILE the freshly parsed results are additionally compared
// against a committed bench2json artifact: any benchmark present in both
// whose ns/op regressed by more than -max-regress (a fraction, default
// 0.15) fails the run with exit status 1. CI uses this as the simulator
// perf-regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, e.g.
// "BenchmarkSweepWorkers/workers=4-8   5   238217412 ns/op".
type result struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs,omitempty"`
	Runs  int64   `json:"runs"`
	NsOp  float64 `json:"ns_per_op"`
	// BytesOp and AllocsOp are pointers so a reported zero (the
	// allocation-free disabled observability path) survives in the
	// JSON while benches without -benchmem omit the fields entirely.
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsOp *int64   `json:"allocs_per_op,omitempty"`
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	// Values always precede their unit: "<float> ns/op", and with
	// -benchmem also "<float> B/op" and "<int> allocs/op".
	idx := -1
	for i, f := range fields {
		if f == "ns/op" {
			idx = i
			break
		}
	}
	if idx < 2 {
		return result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	ns, err := strconv.ParseFloat(fields[idx-1], 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Runs: runs, NsOp: ns}
	for i, f := range fields {
		switch f {
		case "B/op":
			if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				r.BytesOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i-1], 10, 64); err == nil {
				r.AllocsOp = &v
			}
		}
	}
	// Split the trailing -P GOMAXPROCS suffix go test appends.
	if cut := strings.LastIndex(r.Name, "-"); cut > 0 {
		if p, err := strconv.Atoi(r.Name[cut+1:]); err == nil {
			r.Name, r.Procs = r.Name[:cut], p
		}
	}
	return r, true
}

// checkBaseline compares results against the committed baseline artifact
// and returns one message per benchmark whose ns/op regressed beyond
// maxRegress. Benchmarks present on only one side are ignored (new benches
// land before their baseline does).
func checkBaseline(results []result, baselinePath string, maxRegress float64) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base []result
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	byName := make(map[string]result, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var regressions []string
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok || b.NsOp <= 0 {
			continue
		}
		if ratio := r.NsOp/b.NsOp - 1; ratio > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit +%.0f%%)",
					r.Name, r.NsOp, b.NsOp, 100*ratio, 100*maxRegress))
		}
	}
	return regressions, nil
}

func main() {
	baseline := flag.String("baseline", "", "bench2json artifact to compare ns/op against")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression vs -baseline")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		regressions, err := checkBaseline(results, *baseline, *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		for _, msg := range regressions {
			fmt.Fprintln(os.Stderr, "bench2json: perf regression:", msg)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
	}
}
