// Command bench2json converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line:
//
//	go test -bench BenchmarkSweepWorkers ./internal/experiments | bench2json > BENCH_sweep.json
//
// Each object carries the benchmark name (procs suffix stripped into its
// own field), iteration count and ns/op — plus bytes_per_op and
// allocs_per_op when the benchmark ran with -benchmem or b.ReportAllocs
// (the observability overhead benches rely on these to prove the
// disabled path allocates nothing) — so CI artifacts can be diffed and
// plotted without re-parsing the bench text format.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, e.g.
// "BenchmarkSweepWorkers/workers=4-8   5   238217412 ns/op".
type result struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs,omitempty"`
	Runs  int64   `json:"runs"`
	NsOp  float64 `json:"ns_per_op"`
	// BytesOp and AllocsOp are pointers so a reported zero (the
	// allocation-free disabled observability path) survives in the
	// JSON while benches without -benchmem omit the fields entirely.
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsOp *int64   `json:"allocs_per_op,omitempty"`
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	// Values always precede their unit: "<float> ns/op", and with
	// -benchmem also "<float> B/op" and "<int> allocs/op".
	idx := -1
	for i, f := range fields {
		if f == "ns/op" {
			idx = i
			break
		}
	}
	if idx < 2 {
		return result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	ns, err := strconv.ParseFloat(fields[idx-1], 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Runs: runs, NsOp: ns}
	for i, f := range fields {
		switch f {
		case "B/op":
			if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				r.BytesOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(fields[i-1], 10, 64); err == nil {
				r.AllocsOp = &v
			}
		}
	}
	// Split the trailing -P GOMAXPROCS suffix go test appends.
	if cut := strings.LastIndex(r.Name, "-"); cut > 0 {
		if p, err := strconv.Atoi(r.Name[cut+1:]); err == nil {
			r.Name, r.Procs = r.Name[:cut], p
		}
	}
	return r, true
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
