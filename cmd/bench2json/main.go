// Command bench2json converts `go test -bench` text output on stdin into
// a JSON array on stdout, one object per benchmark result line:
//
//	go test -bench BenchmarkSweepWorkers ./internal/experiments | bench2json > BENCH_sweep.json
//
// Each object carries the benchmark name (procs suffix stripped into its
// own field), iteration count and ns/op — plus bytes_per_op and
// allocs_per_op when the benchmark ran with -benchmem or b.ReportAllocs
// (the observability overhead benches rely on these to prove the
// disabled path allocates nothing) — so CI artifacts can be diffed and
// plotted without re-parsing the bench text format. The parsing itself
// lives in internal/results, the same model `atgpu results gate`
// checks trajectories with.
//
// With -baseline FILE the freshly parsed results are additionally compared
// against a committed bench2json artifact: any benchmark present in both
// whose ns/op regressed by more than -max-regress (a fraction, default
// 0.15) fails the run with exit status 1.
//
// With -append STORE the fresh results are also appended to the JSONL
// result store as kind "bench" records labelled -run, each carrying
// -allowance as its per-benchmark gate threshold override (0 = the
// gate's default). This is how CI extends the committed trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"atgpu/internal/results"
)

// checkBaseline compares fresh results against the committed baseline
// artifact and returns one regression per benchmark beyond maxRegress.
// Benchmarks present on only one side are ignored (new benches land
// before their baseline does).
func checkBaseline(fresh []results.BenchResult, baselinePath string, maxRegress float64) ([]string, error) {
	base, err := results.ParseBenchFile(baselinePath)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]results.BenchResult, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var regressions []string
	for _, r := range fresh {
		b, ok := byName[r.Name]
		if !ok || b.NsOp <= 0 {
			continue
		}
		if ratio := r.NsOp/b.NsOp - 1; ratio > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit +%.0f%%)",
					r.Name, r.NsOp, b.NsOp, 100*ratio, 100*maxRegress))
		}
	}
	return regressions, nil
}

// appendStore appends the fresh results to the JSONL result store as
// bench records.
func appendStore(fresh []results.BenchResult, path, run string, allowance float64) error {
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	host, _ := os.Hostname()
	env := &results.Env{SavedUnix: time.Now().Unix(), Host: host, Note: "bench2json"}
	git := results.GitDescribe("")
	for _, b := range fresh {
		rec := b.Record(run, allowance)
		rec.Git = git
		if err := s.Append(rec, env); err != nil {
			s.Close()
			return err
		}
	}
	return s.Close()
}

func main() {
	baseline := flag.String("baseline", "", "bench2json artifact to compare ns/op against")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression vs -baseline")
	appendPath := flag.String("append", "", "also append the results to this JSONL result store")
	run := flag.String("run", "", "run label stamped on appended records")
	allowance := flag.Float64("allowance", 0, "per-benchmark gate allowance stored with appended records (0 = gate default)")
	flag.Parse()

	fresh, err := results.ParseBenchText(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if *appendPath != "" {
		if err := appendStore(fresh, *appendPath, *run, *allowance); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench2json: appended %d records to %s\n", len(fresh), *appendPath)
	}
	if *baseline != "" {
		regressions, err := checkBaseline(fresh, *baseline, *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		for _, msg := range regressions {
			fmt.Fprintln(os.Stderr, "bench2json: perf regression:", msg)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
	}
}
