// Command atgpu-figures regenerates the data behind every table and figure
// of the paper's evaluation: Table I (model feature comparison), Figures
// 3–5 (predicted, observed and normalised results for vector addition,
// reduction and matrix multiplication) and Figure 6 (transfer-proportion
// accuracy), plus the Section IV-D summary statistics.
//
// Output is CSV per figure (written under -out) plus ASCII charts and the
// summary on stdout.
//
// Usage:
//
//	atgpu-figures [-fig 3|4|5|6|all] [-full] [-out DIR] [-o DIR] [-summary] [-workers W] [-run label]
//
// -full uses the paper's exact input sizes (minutes of simulation); the
// default is a 10×-scaled sweep that finishes in seconds and preserves
// every trend the paper reports. -workers spreads each sweep's points
// over that many goroutines (0 = all cores); figures, CSVs and summaries
// are byte-identical for any worker count.
//
// -o DIR additionally appends every sweep's canonical records to
// DIR/records.jsonl (and, when -out is not set, directs the CSVs to DIR
// too), so a figure regeneration leaves a queryable trajectory behind.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"atgpu/internal/experiments"
	"atgpu/internal/models"
	"atgpu/internal/plot"
	"atgpu/internal/results"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1 (Table I), 3, 4, 5, 6, ext (future-work studies), or all")
	full := flag.Bool("full", false, "use the paper's full input sizes (slow)")
	out := flag.String("out", "", "directory for CSV output (default: stdout charts only)")
	oDir := flag.String("o", "", "output dir: append records to <dir>/records.jsonl (and CSVs there unless -out is set)")
	summary := flag.Bool("summary", true, "print the §IV-D summary statistics")
	workers := flag.Int("workers", 0, "worker goroutines per sweep (0 = GOMAXPROCS, 1 = sequential)")
	runLabel := flag.String("run", "figures", "run label stamped on persisted records (-o)")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "atgpu-figures: negative workers %d\n", *workers)
		os.Exit(2)
	}
	csvDir := *out
	if csvDir == "" {
		csvDir = *oDir
	}
	if err := run(*fig, *full, csvDir, *oDir, *runLabel, *summary, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "atgpu-figures:", err)
		os.Exit(1)
	}
}

func run(fig string, full bool, outDir, recordsDir, runLabel string, summary bool, workers int) error {
	if fig == "1" || fig == "table1" {
		fmt.Println("Table I — comparison of GPU abstract models")
		fmt.Println(models.TableI())
		return nil
	}

	cfg := experiments.DefaultConfig()
	cfg.Full = full
	cfg.Workers = workers
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}
	cp := runner.CostParams()
	fmt.Printf("device: %s  scheme: %s  full: %v\n", cfg.Device.Name, cfg.Scheme, full)
	fmt.Printf("calibrated cost params: γ=%.3g op/s  λ=%.3g cy  σ=%.3g s  α=%.3g s  β=%.3g s/word  k'=%d  H=%d\n\n",
		cp.Gamma, cp.Lambda, cp.Sigma, cp.Alpha, cp.Beta, cp.KPrime, cp.H)

	type sweep struct {
		name string
		run  func() (*experiments.WorkloadData, error)
		figs []string // which -fig selections include this sweep
	}
	sweeps := []sweep{
		{"vecadd", runner.RunVecAdd, []string{"3", "6", "all"}},
		{"reduce", runner.RunReduce, []string{"4", "6", "all"}},
		{"matmul", runner.RunMatMul, []string{"5", "6", "all"}},
	}

	if fig == "all" || fig == "1" {
		fmt.Println("Table I — comparison of GPU abstract models")
		fmt.Println(models.TableI())
	}

	if fig == "ext" || fig == "all" {
		if err := runExtensions(runner, full); err != nil {
			return err
		}
	}

	for _, sw := range sweeps {
		if !contains(sw.figs, fig) {
			continue
		}
		start := time.Now()
		data, err := sw.run()
		if err != nil {
			return fmt.Errorf("%s: %w", sw.name, err)
		}
		wall := time.Since(start)
		// Wall time goes to stderr: stdout (charts, CSVs, summaries) is
		// deterministic and byte-identical for any -workers value.
		fmt.Fprintf(os.Stderr, "atgpu-figures: %s sweep: %.1fs wall\n",
			sw.name, wall.Seconds())
		if err := persistRecords(recordsDir, runLabel, data.Records, workers, wall); err != nil {
			return err
		}
		fmt.Printf("== %s sweep (%d sizes) ==\n", sw.name, len(data.Points))

		for _, f := range experiments.Figures(data) {
			if fig != "all" && !figMatches(f.ID, fig) {
				continue
			}
			fmt.Println(plot.ASCII(fmt.Sprintf("%s — %s", f.ID, f.Title), 60, 12, f.Series...))
			if outDir != "" {
				if err := writeCSV(outDir, f); err != nil {
					return err
				}
			}
		}
		if summary {
			s, err := experiments.Summarise(data)
			if err != nil {
				return err
			}
			fmt.Println(s)
		}
	}
	return nil
}

// runExtensions prints the future-work studies (§V): scan verification,
// the transpose coalescing contrast, out-of-core scheduling, and the
// cross-device sweep.
func runExtensions(runner *experiments.Runner, full bool) error {
	fmt.Println("== future-work extensions (§V) ==")

	scan, err := runner.RunScan()
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	s, err := experiments.Summarise(scan)
	if err != nil {
		return err
	}
	fmt.Println("-- scan (prefix sum) verification --")
	fmt.Println(s)

	size := 128
	if full {
		size = 512
	}
	tc, err := runner.RunTransposeContrast(size)
	if err != nil {
		return fmt.Errorf("transpose: %w", err)
	}
	fmt.Printf("-- transpose coalescing contrast (n=%d) --\n", tc.N)
	fmt.Printf("model q:       naive %.0f vs tiled %.0f (ratio %.1fx)\n",
		tc.NaiveQ, tc.TiledQ, tc.NaiveQ/tc.TiledQ)
	fmt.Printf("device cycles: naive %d vs tiled %d (ratio %.1fx)\n",
		tc.NaiveCycles, tc.TiledCycles, float64(tc.NaiveCycles)/float64(tc.TiledCycles))
	fmt.Printf("model orders the variants correctly: %v\n\n", tc.ModelOrdersCorrectly)

	ooc, err := runner.RunOutOfCore(1<<16, []int{1 << 11, 1 << 12, 1 << 13})
	if err != nil {
		return fmt.Errorf("out-of-core: %w", err)
	}
	fmt.Println("-- out-of-core reduction: serial vs overlapped --")
	fmt.Printf("%-12s %8s %12s %12s %8s\n", "chunk", "chunks", "serial(s)", "overlap(s)", "speedup")
	for _, p := range ooc {
		fmt.Printf("%-12d %8d %12.6f %12.6f %7.2fx\n",
			p.ChunkWords, p.Chunks, p.Serial, p.Overlapped, p.Speedup)
	}
	fmt.Println()

	stratN := 1 << 16
	if full {
		stratN = 1 << 20
	}
	strats, err := runner.RunReduceStrategies(stratN)
	if err != nil {
		return fmt.Errorf("strategies: %w", err)
	}
	fmt.Printf("-- reduction strategy study (n=%d) --\n", stratN)
	fmt.Printf("%-14s %8s %10s %14s %14s\n", "strategy", "rounds", "blocks", "predicted(s)", "observed(s)")
	for _, p := range strats {
		fmt.Printf("%-14s %8d %10d %14.6f %14.6f\n",
			p.Strategy, p.Rounds, p.Blocks, p.PredictedKernel, p.ObservedKernel)
	}
	fmt.Printf("model/device pairwise ordering agreement: %.0f%%\n\n",
		100*experiments.StrategyOrderingAgreement(strats))

	devs, err := experiments.RunDeviceSweep(1<<18, runner.Config().Scheme, 0)
	if err != nil {
		return fmt.Errorf("device sweep: %w", err)
	}
	fmt.Println("-- cross-device verification (vecadd probe) --")
	fmt.Printf("%-14s %8s %8s %10s\n", "device", "ΔT", "ΔE", "coverage")
	for _, p := range devs {
		fmt.Printf("%-14s %7.1f%% %7.1f%% %9.2fx\n",
			p.Device, 100*p.DeltaPredicted, 100*p.DeltaObserved, p.CostCoverage)
	}
	fmt.Println()
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// figMatches reports whether a figure ID like "fig3a" belongs to the
// selection "3" (or "6" etc.).
func figMatches(id, sel string) bool {
	return len(id) >= 4 && id[:3] == "fig" && id[3:4] == sel
}

// persistRecords appends a sweep's canonical records to
// <dir>/records.jsonl, stamping run label, git describe, worker count
// and the wall-clock envelope at this persist boundary only — the
// records themselves stay byte-identical across workers and commits.
func persistRecords(dir, run string, recs []results.Record, workers int, wall time.Duration) error {
	if dir == "" || len(recs) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "records.jsonl")
	s, err := results.Open(path)
	if err != nil {
		return err
	}
	git := results.GitDescribe("")
	host, _ := os.Hostname()
	env := &results.Env{
		SavedUnix: time.Now().Unix(),
		Host:      host,
		WallMs:    float64(wall.Milliseconds()),
		Note:      run,
	}
	for _, rec := range recs {
		rec.Run = run
		rec.Git = git
		rec.Workers = workers
		if err := s.Append(rec, env); err != nil {
			s.Close()
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "atgpu-figures: %d records -> %s\n", len(recs), path)
	return nil
}

func writeCSV(dir string, f experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, f.ID+".csv")
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := plot.WriteCSV(fh, f.XLabel, f.Series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return fh.Close()
}
