// Command simgpu exercises the simulated GPU directly: it builds one of
// the library kernels, disassembles it, launches it on a chosen device
// preset, and prints the device-level statistics (cycles, transactions,
// coalescing, bank conflicts, occupancy) that the ATGPU model's metrics
// abstract.
//
// Usage:
//
//	simgpu [-kernel vecadd|reduce|matmul] [-n N] [-device gtx650|tiny] [-disasm]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"atgpu/internal/algorithms"
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

func main() {
	kname := flag.String("kernel", "vecadd", "kernel: vecadd, reduce, matmul")
	n := flag.Int("n", 4096, "input size")
	device := flag.String("device", "gtx650", "device preset: gtx650, gtx1080, k40, tiny")
	disasm := flag.Bool("disasm", false, "print kernel disassembly")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the first launch to this file")
	flag.Parse()

	if err := run(*kname, *n, *device, *disasm, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "simgpu:", err)
		os.Exit(1)
	}
}

func run(kname string, n int, device string, disasm bool, traceOut string) error {
	var cfg simgpu.Config
	switch device {
	case "gtx650":
		cfg = simgpu.GTX650()
	case "gtx1080":
		cfg = simgpu.GTX1080()
	case "k40":
		cfg = simgpu.TeslaK40()
	case "tiny":
		cfg = simgpu.Tiny()
	default:
		return fmt.Errorf("unknown device %q", device)
	}

	// Size global memory to the problem.
	need := 4*n + 4*n + 4*cfg.WarpWidth
	if kname == "matmul" {
		need = 4*n*n + 4*cfg.WarpWidth
	}
	if need < cfg.GlobalWords {
		cfg.GlobalWords = need
	}

	dev, err := simgpu.New(cfg)
	if err != nil {
		return err
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
	if err != nil {
		return err
	}
	h, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		return err
	}
	var tracer *simgpu.Tracer
	if traceOut != "" {
		tracer = &simgpu.Tracer{CaptureMemory: true}
		h.SetTracer(tracer)
	}

	rng := rand.New(rand.NewSource(1))
	randWords := func(n int) []mem.Word {
		w := make([]mem.Word, n)
		for i := range w {
			w[i] = mem.Word(rng.Intn(100))
		}
		return w
	}

	var prog *kernel.Program
	switch kname {
	case "vecadd":
		alg := algorithms.VecAdd{N: n}
		if prog, err = alg.Kernel(cfg.WarpWidth, 0, n, 2*n); err != nil {
			return err
		}
		if disasm {
			fmt.Println(prog.Disassemble())
		}
		if _, err := alg.Run(h, randWords(n), randWords(n)); err != nil {
			return err
		}
	case "reduce":
		alg := algorithms.Reduce{N: n}
		if prog, err = alg.Kernel(cfg.WarpWidth, 0, n, n); err != nil {
			return err
		}
		if disasm {
			fmt.Println(prog.Disassemble())
		}
		if _, err := alg.Run(h, randWords(n)); err != nil {
			return err
		}
	case "matmul":
		if n%cfg.WarpWidth != 0 {
			return fmt.Errorf("matmul n=%d must be a multiple of warp width %d", n, cfg.WarpWidth)
		}
		alg := algorithms.MatMul{N: n}
		if prog, err = alg.Kernel(cfg.WarpWidth, 0, n*n, 2*n*n); err != nil {
			return err
		}
		if disasm {
			fmt.Println(prog.Disassemble())
		}
		if _, err := alg.Run(h, randWords(n*n), randWords(n*n)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kernel %q", kname)
	}

	rep := h.Report()
	fmt.Printf("device %s  kernel %s  n=%d\n", cfg.Name, prog.Name, n)
	fmt.Printf("kernel time   %v\n", rep.Kernel)
	fmt.Printf("transfer time %v (in %d words / %d txns, out %d words / %d txns)\n",
		rep.Transfer, rep.Transfers.InWords, rep.Transfers.InTransactions,
		rep.Transfers.OutWords, rep.Transfers.OutTransactions)
	fmt.Printf("total time    %v\n", rep.Total)
	fmt.Println(rep.Stats)

	if tracer != nil {
		fh, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := tracer.WriteChromeTrace(fh); err != nil {
			return err
		}
		fmt.Printf("\n%s", tracer.Summary())
		fmt.Print(tracer.OccupancyTimeline(60))
		fmt.Printf("chrome trace written to %s\n", traceOut)
		return fh.Close()
	}
	return nil
}
