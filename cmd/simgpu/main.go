// Command simgpu exercises the simulated GPU directly: it builds one of
// the library kernels, disassembles it, launches it on a chosen device
// preset, and prints the device-level statistics (cycles, transactions,
// coalescing, bank conflicts, occupancy) that the ATGPU model's metrics
// abstract.
//
// Usage:
//
//	simgpu [-kernel vecadd|reduce|matmul] [-n N] [-device gtx650|tiny] [-disasm]
//	       [--trace out.json --trace-max-events N]
//	       [--workers W] [--fault-rate R --fault-seed S --max-retries K]
//
// With --trace, the run writes one Perfetto trace of the full host
// timeline — transfer occupancy, per-stream activity, kernel spans with
// the device tracer's per-block slices embedded — all on the simulated
// clock. With --workers > 1 only the first replica is traced (replicas
// are identical by construction).
//
// With --fault-rate > 0, deterministic seeded faults are injected into
// transfers and launches; the run recovers via checksum-verified retries,
// watchdog relaunches and SM degradation, and the recovery work is printed.
//
// With --workers > 1, that many identical replicas of the run execute
// concurrently, each on its own device/engine/host (the per-goroutine
// isolation the experiment sweeps use); the first replica's report prints
// exactly as a single run would, followed by the replica totals folded
// with the stats Merge methods. Every replica uses the same seeds, so all
// reports are identical — a quick determinism check for the concurrent
// machinery. Replicas dispatch to a panic-isolated scheduler pool capped
// at the core count; SIGINT/SIGTERM skips replicas that have not started
// yet, still prints the first completed replica's report and the merged
// stats over the completed ones, and exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/mem"
	"atgpu/internal/obs"
	"atgpu/internal/sched"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

func main() {
	kname := flag.String("kernel", "vecadd", "kernel: vecadd, reduce, matmul")
	n := flag.Int("n", 4096, "input size")
	device := flag.String("device", "gtx650", "device preset: gtx650, gtx1080, k40, tiny")
	disasm := flag.Bool("disasm", false, "print kernel disassembly")
	traceOut := flag.String("trace", "", "write a Perfetto trace of the full host timeline (transfers, streams, kernels, per-block device slices) to this file")
	traceMaxEvents := flag.Int("trace-max-events", 0, "cap on recorded trace events, host and device each (0 = default 1048576)")
	pipeline := flag.Bool("pipeline", false, "run the chunked two-stream pipelined variant (overlaps transfer and compute)")
	chunks := flag.Int("chunks", 4, "pipeline: chunk (matmul band) count")
	workers := flag.Int("workers", 1, "concurrent identical replicas, each on its own device (0 = GOMAXPROCS)")
	faultRate := flag.Float64("fault-rate", 0, "fault injection probability in [0,1]; 0 disables")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (same seed replays the same faults)")
	maxRetries := flag.Int("max-retries", 0, "transfer retry budget override (0 = default)")
	lintFlag := flag.String("lint", "", "static-analysis pre-flight on every launch: off, warn, or error (error refuses launches with error-severity findings)")
	flag.Parse()

	lint, err := analyze.ParseMode(*lintFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simgpu:", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancels a multi-replica run between replicas; the
	// completed replicas' report and merged stats still print before the
	// nonzero exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *kname, *n, *device, *disasm, *traceOut, *traceMaxEvents, *pipeline, *chunks, *workers, *faultRate, *faultSeed, *maxRetries, lint); err != nil {
		fmt.Fprintln(os.Stderr, "simgpu:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, kname string, n int, device string, disasm bool, traceOut string, traceMaxEvents int, pipeline bool, chunks, workers int, faultRate float64, faultSeed int64, maxRetries int, lint analyze.Mode) error {
	if workers < 0 {
		return fmt.Errorf("negative workers %d", workers)
	}
	if pipeline && chunks <= 0 {
		return fmt.Errorf("non-positive chunks %d", chunks)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if faultRate < 0 || faultRate > 1 {
		return fmt.Errorf("fault rate %v outside [0,1]", faultRate)
	}
	if maxRetries < 0 {
		return fmt.Errorf("negative max retries %d", maxRetries)
	}
	if traceMaxEvents < 0 {
		return fmt.Errorf("negative trace-max-events %d", traceMaxEvents)
	}
	var cfg simgpu.Config
	switch device {
	case "gtx650":
		cfg = simgpu.GTX650()
	case "gtx1080":
		cfg = simgpu.GTX1080()
	case "k40":
		cfg = simgpu.TeslaK40()
	case "tiny":
		cfg = simgpu.Tiny()
	default:
		return fmt.Errorf("unknown device %q", device)
	}

	// Size global memory to the problem. Pipelined variants allocate
	// per-stream chunk buffer sets instead of whole-input buffers.
	need := 4*n + 4*n + 4*cfg.WarpWidth
	if kname == "matmul" {
		need = 4*n*n + 4*cfg.WarpWidth
	}
	if pipeline {
		var words int
		var err error
		switch kname {
		case "vecadd":
			words, err = algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: 2}.GlobalWords(cfg.WarpWidth)
		case "reduce":
			words, err = algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: 2}.GlobalWords(cfg.WarpWidth)
		case "matmul":
			words, err = algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: 2}.GlobalWords(cfg.WarpWidth)
		default:
			return fmt.Errorf("unknown kernel %q", kname)
		}
		if err != nil {
			return err
		}
		need = words + 4*cfg.WarpWidth
	}
	if need < cfg.GlobalWords {
		cfg.GlobalWords = need
	}

	var tracer *simgpu.Tracer
	if traceOut != "" {
		tracer = &simgpu.Tracer{CaptureMemory: true, MaxEvents: traceMaxEvents}
	}

	// Every replica builds its own device/engine/host and draws inputs
	// from the same seed, so all replicas simulate the identical run.
	replica := func(tr *simgpu.Tracer) (*simgpu.Host, *kernel.Program, error) {
		dev, err := simgpu.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		dev.SetUniformProver(analyze.UniformProver)
		eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pinned)
		if err != nil {
			return nil, nil, err
		}
		h, err := simgpu.NewHost(dev, eng, 0)
		if err != nil {
			return nil, nil, err
		}
		if faultRate > 0 {
			inj, err := faults.NewRate(faults.RateConfig{
				Seed:         faultSeed,
				TransferRate: faultRate,
				KernelRate:   faultRate,
			})
			if err != nil {
				return nil, nil, err
			}
			policy := transfer.DefaultRetryPolicy()
			if maxRetries > 0 {
				policy.MaxRetries = maxRetries
			}
			policy.Seed = faultSeed + 1
			if err := eng.SetFaults(inj, policy); err != nil {
				return nil, nil, err
			}
			if err := h.SetFaults(inj, 0, 0); err != nil {
				return nil, nil, err
			}
		}
		if tr != nil {
			h.SetTracer(tr)
			h.SetObs(obs.NewRecorder(traceMaxEvents), nil)
		}
		if lint != analyze.ModeOff {
			h.SetPreLaunch(analyze.Gate(analyze.FromConfig(cfg), nil, lint, os.Stderr))
		}

		rng := rand.New(rand.NewSource(1))
		randWords := func(n int) []mem.Word {
			w := make([]mem.Word, n)
			for i := range w {
				w[i] = mem.Word(rng.Intn(100))
			}
			return w
		}

		var prog *kernel.Program
		switch kname {
		case "vecadd":
			alg := algorithms.VecAdd{N: n}
			if prog, err = alg.Kernel(cfg.WarpWidth, 0, n, 2*n); err != nil {
				return nil, nil, err
			}
			if pipeline {
				p := algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: 2}
				if _, err := p.Run(h, randWords(n), randWords(n)); err != nil {
					return nil, nil, err
				}
			} else if _, err := alg.Run(h, randWords(n), randWords(n)); err != nil {
				return nil, nil, err
			}
		case "reduce":
			alg := algorithms.Reduce{N: n}
			if prog, err = alg.Kernel(cfg.WarpWidth, 0, n, n); err != nil {
				return nil, nil, err
			}
			if pipeline {
				p := algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: 2}
				if _, err := p.Run(h, randWords(n)); err != nil {
					return nil, nil, err
				}
			} else if _, err := alg.Run(h, randWords(n)); err != nil {
				return nil, nil, err
			}
		case "matmul":
			if n%cfg.WarpWidth != 0 {
				return nil, nil, fmt.Errorf("matmul n=%d must be a multiple of warp width %d", n, cfg.WarpWidth)
			}
			alg := algorithms.MatMul{N: n}
			if prog, err = alg.Kernel(cfg.WarpWidth, 0, n*n, 2*n*n); err != nil {
				return nil, nil, err
			}
			if pipeline {
				p := algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: 2}
				if _, err := p.Run(h, randWords(n*n), randWords(n*n)); err != nil {
					return nil, nil, err
				}
			} else if _, err := alg.Run(h, randWords(n*n), randWords(n*n)); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("unknown kernel %q", kname)
		}
		return h, prog, nil
	}

	hosts := make([]*simgpu.Host, workers)
	progs := make([]*kernel.Program, workers)
	errs := make([]error, workers)
	if workers == 1 {
		hosts[0], progs[0], errs[0] = replica(tracer)
	} else {
		// The shared scheduler gives each replica panic isolation and
		// checks ctx between dispatches, so an interrupt skips replicas
		// that have not started yet. The pool is capped at the core
		// count: beyond it replicas only queue, which is what lets an
		// interrupt skip them.
		pool := workers
		if cores := runtime.GOMAXPROCS(0); pool > cores {
			pool = cores
		}
		errs = sched.Run(ctx, workers, pool, func(w int) error {
			// Only the first replica is traced: replicas are
			// identical, so one timeline is the timeline, and the
			// others stay uninstrumented while running concurrently.
			var tr *simgpu.Tracer
			if w == 0 {
				tr = tracer
			}
			var err error
			hosts[w], progs[w], err = replica(tr)
			return err
		})
	}
	cancelled := false
	for _, err := range errs {
		if errors.Is(err, sched.ErrCancelled) {
			cancelled = true
			continue
		}
		if err != nil {
			return err
		}
	}
	if hosts[0] == nil {
		return fmt.Errorf("interrupted before the first replica completed")
	}

	h, prog := hosts[0], progs[0]
	if disasm {
		fmt.Println(prog.Disassemble())
	}
	rep := h.Report()
	fmt.Printf("device %s  kernel %s  n=%d\n", cfg.Name, prog.Name, n)
	fmt.Printf("kernel time   %v\n", rep.Kernel)
	fmt.Printf("transfer time %v (in %d words / %d txns, out %d words / %d txns)\n",
		rep.Transfer, rep.Transfers.InWords, rep.Transfers.InTransactions,
		rep.Transfers.OutWords, rep.Transfers.OutTransactions)
	fmt.Printf("total time    %v\n", rep.Total)
	if pipeline {
		busy := rep.Kernel + rep.Transfer + rep.Sync
		fmt.Printf("overlap saved %v of %v busy time (chunks=%d, streams=2)\n",
			h.OverlapSaved(), busy, chunks)
	}
	fmt.Println(rep.Stats)
	if rep.Transfers.Faulted() || rep.Resilience.Degraded() {
		fmt.Printf("resilience: %d retries (%d words re-sent, backoff %v), %d corruptions, %d drops, %d stalls\n",
			rep.Transfers.Retries, rep.Transfers.RetransferredWords, rep.Transfers.BackoffTime,
			rep.Transfers.CorruptionsDetected, rep.Transfers.DroppedTransactions, rep.Transfers.StallEvents)
		fmt.Printf("            %d watchdog fires (%v lost), %d relaunches, %d degraded launches, %d failed SMs\n",
			rep.Resilience.WatchdogFires, rep.Resilience.WatchdogTime, rep.Resilience.Relaunches,
			rep.Resilience.DegradedLaunches, rep.Resilience.FailedSMs)
		for _, ev := range h.FaultEvents() {
			fmt.Printf("  fault %s\n", ev)
		}
	}

	if workers > 1 {
		var tf transfer.Stats
		var rs simgpu.ResilienceStats
		identical := true
		completed := 0
		for _, hh := range hosts {
			if hh == nil { // skipped by an interrupt before it started
				continue
			}
			completed++
			r := hh.Report()
			tf.Merge(r.Transfers)
			rs.Merge(r.Resilience)
			if r.Total != rep.Total || r.Transfers != rep.Transfers || r.Resilience != rep.Resilience {
				identical = false
			}
		}
		if cancelled {
			fmt.Printf("replicas: %d of %d completed (interrupted), identical reports: %v\n",
				completed, workers, identical)
		} else {
			fmt.Printf("replicas: %d concurrent, identical reports: %v\n", workers, identical)
		}
		fmt.Printf("merged:   %d words in / %d out across replicas, %d retries, %d watchdog fires\n",
			tf.InWords, tf.OutWords, tf.Retries, rs.WatchdogFires)
	}

	if tracer != nil {
		rep0 := h.SnapshotObs()
		if err := rep0.WriteTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Printf("\n%s", tracer.Summary())
		fmt.Print(tracer.OccupancyTimeline(60))
		fmt.Printf("trace: %d events (host timeline with device block slices) written to %s\n",
			rep0.Trace.Len(), traceOut)
		if rep0.Trace.WasTruncated() {
			fmt.Printf("warning: trace truncated at max-events=%d; raise -trace-max-events\n",
				rep0.Trace.Cap())
		}
	}
	if cancelled {
		return fmt.Errorf("interrupted: partial replica stats flushed: %w", sched.ErrCancelled)
	}
	return nil
}
