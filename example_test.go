package atgpu_test

import (
	"fmt"
	"log"

	"atgpu"
	"atgpu/internal/core"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
)

// Example_predictVsObserve is the paper's core workflow: price an
// algorithm on the abstract model, execute it on the simulated device, and
// compare the transfer shares. Run on the deterministic Tiny device so the
// output is stable.
func Example_predictVsObserve() {
	opts := atgpu.DefaultOptions()
	opts.Device = simgpu.Tiny()
	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}

	const n = 1024
	pred, err := sys.AnalyzeVecAdd(n)
	if err != nil {
		log.Fatal(err)
	}
	a := make([]atgpu.Word, n)
	b := make([]atgpu.Word, n)
	for i := range a {
		a[i] = atgpu.Word(i)
		b[i] = atgpu.Word(2 * i)
	}
	c, obs, err := sys.RunVecAdd(a, b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rounds:", pred.Analysis.R())
	fmt.Println("transfer words:", pred.Analysis.TotalTransferWords())
	fmt.Println("c[10]:", c[10])
	fmt.Println("ATGPU above SWGPU:", pred.GPUCost > pred.SWGPUCost)
	fmt.Println("transfer adds to total:", obs.Total > obs.Kernel)
	// Output:
	// rounds: 1
	// transfer words: 3072
	// c[10]: 30
	// ATGPU above SWGPU: true
	// transfer adds to total: true
}

// ExampleTableI reproduces the paper's model-comparison table.
func ExampleTableI() {
	fmt.Print(atgpu.TableI())
	// Output:
	// Item                         AGPU    SWGPU   ATGPU
	// ----------------------------------------------------
	// Pseudocode                   x               x
	// Time Complexity              x       x       x
	// I/O Complexity               x       x       x
	// Space Complexity             x               x
	// Shared Memory Limit          x               x
	// Synchronisation                      x       x
	// Cost Function                        x       x
	// Global Memory Limit                          x
	// Host/Device Data Transfer                    x
}

// Example_costFunctions evaluates both of the paper's cost expressions on
// a hand-written analysis with easy numbers: one round, t = 10 ops,
// q = 5 block transactions, I = 100 words in 2 transactions, O = 50 words
// in 1, on a machine where γ = 1000 op/s, λ = 4, σ = 0.5 s, α = 0.01 s,
// β = 0.001 s/word, k' = 2, H = 4.
func Example_costFunctions() {
	analysis := &core.Analysis{
		Name:   "by-hand",
		Params: core.Params{P: 128, B: 32, M: 100, G: 10000},
		Rounds: []core.Round{{
			Time: 10, IO: 5, Blocks: 4, SharedWords: 25,
			InWords: 100, InTransactions: 2,
			OutWords: 50, OutTransactions: 1,
		}},
	}
	cp := core.CostParams{
		Gamma: 1000, Lambda: 4, Sigma: 0.5,
		Alpha: 0.01, Beta: 0.001, KPrime: 2, H: 4,
	}

	perfect, err := core.PerfectCost(analysis, cp)
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := core.GPUCost(analysis, cp)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := models.SWGPUCost(analysis, cp)
	if err != nil {
		log.Fatal(err)
	}
	// TI = 2α+100β = 0.12; TO = α+50β = 0.06
	// Expression (1): 0.12 + (10+20)/1000 + 0.06 + 0.5 = 0.71
	// Expression (2): ℓ = min(⌊100/25⌋,4) = 4, factor = ⌈4/8⌉ = 1 → same
	fmt.Printf("perfect (Expr 1): %.2f s\n", perfect)
	fmt.Printf("gpu     (Expr 2): %.2f s\n", gpu)
	fmt.Printf("swgpu baseline:   %.2f s\n", sw)
	// Output:
	// perfect (Expr 1): 0.71 s
	// gpu     (Expr 2): 0.71 s
	// swgpu baseline:   0.53 s
}
