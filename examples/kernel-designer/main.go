// Kernel designer: the full design-and-analysis workflow the ATGPU model
// exists for, applied to an algorithm not in the paper — SAXPY-like
// y ← a·x + y. The program (1) writes the kernel against the model's
// pseudocode primitives with the structured builder, (2) derives its
// per-round analysis by hand the way Section IV derives the paper's
// examples, (3) prices the analysis with the calibrated cost functions,
// and (4) executes the kernel on the simulated device to check the
// prediction — closing the loop a researcher would close on hardware.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"atgpu"
	"atgpu/internal/core"
	"atgpu/internal/kernel"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

const (
	n     = 1 << 20
	scale = 3
)

// buildKernel writes y[i] ← scale·x[i] + y[i] with global→shared staging,
// one thread per element, matching the paper's pseudocode conventions.
func buildKernel(b, baseX, baseY int) (*kernel.Program, error) {
	kb := kernel.NewBuilder("saxpy", 2*b)
	j := kb.Reg("lane")
	blk := kb.Reg("block")
	idx := kb.Reg("idx")
	kb.LaneID(j)
	kb.BlockID(blk)
	kb.Mul(idx, blk, kernel.Imm(int64(b)))
	kb.Add(idx, idx, kernel.R(j))

	inRange := kb.Reg("inRange")
	kb.Slt(inRange, idx, kernel.Imm(n))
	addr := kb.Reg("addr")
	val := kb.Reg("val")
	yOff := kb.Reg("yOff")
	kb.IfDo(inRange, func() {
		// _x[j] ⇐ x[idx]; _y[j] ⇐ y[idx]
		kb.Add(addr, idx, kernel.Imm(int64(baseX)))
		kb.LdGlobal(val, addr)
		kb.StShared(j, val)
		kb.Add(addr, idx, kernel.Imm(int64(baseY)))
		kb.LdGlobal(val, addr)
		kb.Add(yOff, j, kernel.Imm(int64(b)))
		kb.StShared(yOff, val)
		// _y[j] ← scale·_x[j] + _y[j]
		vx := kb.Reg("vx")
		kb.LdShared(vx, j)
		kb.Mul(vx, vx, kernel.Imm(scale))
		vy := kb.Reg("vy")
		kb.LdShared(vy, yOff)
		kb.Add(vy, vy, kernel.R(vx))
		kb.StShared(yOff, vy)
		// y[idx] ⇐ _y[j]
		kb.LdShared(val, yOff)
		kb.StGlobal(addr, val)
	})
	return kb.Build()
}

// analyze derives the ATGPU account by hand: one round, k = ⌈n/b⌉ blocks,
// per-block q = 3 (coalesced x load, y load, y store), 2b shared words,
// I = 2n (x and y in, 2 transactions), O = n (y out, 1 transaction).
func analyze(p core.Params, opsPerThread float64) *core.Analysis {
	k := (n + p.B - 1) / p.B
	return &core.Analysis{
		Name:   "saxpy",
		Params: p,
		Rounds: []core.Round{{
			Time:            opsPerThread,
			IO:              float64(3 * k),
			GlobalWords:     2 * n,
			SharedWords:     2 * p.B,
			Blocks:          k,
			InWords:         2 * n,
			InTransactions:  2,
			OutWords:        n,
			OutTransactions: 1,
		}},
	}
}

func main() {
	sys, err := atgpu.NewSystem(atgpu.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	opts := sys.Options()
	b := opts.Device.WarpWidth

	// Device setup mirroring what atgpu.System does internally, but laid
	// out explicitly because this example owns its own kernel.
	devCfg := opts.Device
	devCfg.GlobalWords = 2*n + 4*b
	dev, err := simgpu.New(devCfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), opts.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	host, err := simgpu.NewHost(dev, eng, opts.SyncCost)
	if err != nil {
		log.Fatal(err)
	}

	baseX, err := host.Malloc(n)
	if err != nil {
		log.Fatal(err)
	}
	baseY, err := host.Malloc(n)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := buildKernel(b, baseX, baseY)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed kernel: %d instructions, %d registers, %d shared words\n",
		prog.Len(), prog.NumRegs, prog.SharedWords)

	// Predict. The per-thread operation count comes straight from the
	// built kernel, as a designer would read it off their pseudocode.
	blocks := (n + b - 1) / b
	a := analyze(sys.ModelParams(blocks), float64(prog.Len()))
	pred, err := sys.Analyze(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted: GPU-cost %.4gs (ΔT %.1f%%), SWGPU %.4gs\n",
		pred.GPUCost, 100*pred.TransferFraction, pred.SWGPUCost)

	// Observe.
	rng := rand.New(rand.NewSource(9))
	x := make([]atgpu.Word, n)
	y := make([]atgpu.Word, n)
	want := make([]atgpu.Word, n)
	for i := range x {
		x[i] = atgpu.Word(rng.Intn(100))
		y[i] = atgpu.Word(rng.Intn(100))
		want[i] = scale*x[i] + y[i]
	}
	if err := host.TransferIn(baseX, x); err != nil {
		log.Fatal(err)
	}
	if err := host.TransferIn(baseY, y); err != nil {
		log.Fatal(err)
	}
	if _, err := host.Launch(prog, blocks); err != nil {
		log.Fatal(err)
	}
	got, err := host.TransferOut(baseY, n)
	if err != nil {
		log.Fatal(err)
	}
	host.EndRound()
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("wrong y[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	rep := host.Report()
	fmt.Printf("observed:  total %v (kernel %v, transfer %v), ΔE %.1f%%\n",
		rep.Total, rep.Kernel, rep.Transfer, 100*rep.TransferFraction())
	fmt.Printf("verified %d elements against the CPU reference\n", n)
	fmt.Printf("\nprediction covers %.0f%% of observed total (SWGPU alone: %.0f%%)\n",
		100*pred.GPUCost/rep.Total.Seconds(), 100*pred.SWGPUCost/rep.Total.Seconds())
}
