// Pseudocode: the paper's Section II notation as a compilable language —
// both halves of it. The kernel is written with the device-side notation
// (underscore-scoped shared variables, the <== block-transfer operator, a
// single-block if); the host round is written with the plan notation (the
// W transfer operator pairing capitalised host variables with lower-case
// device arrays, launches, sync). No Go kernel code at all: the program
// below is the paper's "Pseudocode Vector Addition" listing, executed.
package main

import (
	"fmt"
	"log"

	"atgpu/internal/mem"
	"atgpu/internal/pseudocode"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// The kernel: y[i] = max(x[i], 0) + bias, staged through shared memory.
const kernelSrc = `
kernel relubias(n, bias, baseX, baseY)
  shared _x[b]
  idx = mp * b + core
  if idx < n
    _x[core] <== global[baseX + idx]
    _x[core] = max(_x[core], 0) + bias
    global[baseY + idx] <== _x[core]
  end
`

// The host round, in the paper's wrapper notation: transfer in (W), run
// the kernel on ⌈n/b⌉ multiprocessors, transfer out (W), synchronise.
const planSrc = `
plan relu(n, bias)
  dev x[n]
  dev y[n]
  x W X
  launch relubias(n = n, bias = bias, baseX = x, baseY = y) blocks (n + b - 1) / b
  Y W y
  sync
`

func main() {
	const (
		n    = 1 << 16
		bias = 7
	)

	cfg := simgpu.GTX650()
	cfg.GlobalWords = 2*n + 4*cfg.WarpWidth
	dev, err := simgpu.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pageable)
	if err != nil {
		log.Fatal(err)
	}
	host, err := simgpu.NewHost(dev, eng, 0)
	if err != nil {
		log.Fatal(err)
	}

	kern, err := pseudocode.Parse(kernelSrc)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := pseudocode.ParsePlan(planSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed kernel %q and plan %q (%d statements)\n",
		kern.Name, plan.Name, len(plan.Stmts))

	// Host input, per the paper's convention a capitalised variable.
	X := make([]mem.Word, n)
	for i := range X {
		X[i] = mem.Word(i%101) - 50
	}

	res, err := plan.Run(pseudocode.PlanEnv{
		Host:    host,
		Kernels: map[string]*pseudocode.Kernel{"relubias": kern},
		Params:  map[string]int64{"n": n, "bias": bias},
		In:      map[string][]mem.Word{"X": X},
	})
	if err != nil {
		log.Fatal(err)
	}

	Y := res.Out["Y"]
	for i := range Y {
		want := X[i]
		if want < 0 {
			want = 0
		}
		want += bias
		if Y[i] != want {
			log.Fatalf("Y[%d] = %d, want %d", i, Y[i], want)
		}
	}

	rep := host.Report()
	fmt.Printf("verified %d elements\n", n)
	fmt.Printf("rounds %d: kernel %v + transfer %v = total %v (ΔE %.1f%%)\n",
		rep.Rounds, rep.Kernel, rep.Transfer, rep.Total, 100*rep.TransferFraction())
	fmt.Printf("device stats: %d coalesced transactions, %d bank conflicts, %d divergent branches\n",
		rep.Stats.GlobalTransactions, rep.Stats.BankConflicts, rep.Stats.DivergentBranches)
	fmt.Printf("transfer stats: I=%d words (Î=%d), O=%d words (Ô=%d)\n",
		rep.Transfers.InWords, rep.Transfers.InTransactions,
		rep.Transfers.OutWords, rep.Transfers.OutTransactions)
}
