// Transfer schemes: the paper's motivation made concrete. The same vector
// addition is executed with pageable, pinned and mapped (zero-copy-like)
// host↔device transfer — the technique space studied by Fujii et al. and
// van Werkhoven et al. (paper §I-D) — showing how strongly the transfer
// discipline moves *total* time while kernel time is untouched, and how
// the ATGPU cost function re-predicts each case by swapping (α, β) while a
// transfer-blind model cannot distinguish them at all.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"atgpu"
	"atgpu/internal/transfer"
)

func main() {
	const n = 1 << 21

	rng := rand.New(rand.NewSource(7))
	a := make([]atgpu.Word, n)
	b := make([]atgpu.Word, n)
	for i := range a {
		a[i] = atgpu.Word(rng.Intn(1000))
		b[i] = atgpu.Word(rng.Intn(1000))
	}

	fmt.Printf("vecadd n=%d under three transfer schemes\n\n", n)
	fmt.Printf("%-10s %12s %12s %12s %8s %8s\n",
		"scheme", "kernel", "transfer", "total", "ΔE", "ΔT")

	var kernelTimes []time.Duration
	for _, scheme := range []transfer.Scheme{transfer.Pageable, transfer.Pinned, transfer.Mapped} {
		opts := atgpu.DefaultOptions()
		opts.Scheme = scheme
		sys, err := atgpu.NewSystem(opts)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := sys.AnalyzeVecAdd(n)
		if err != nil {
			log.Fatal(err)
		}
		_, obs, err := sys.RunVecAdd(a, b)
		if err != nil {
			log.Fatal(err)
		}
		kernelTimes = append(kernelTimes, obs.Kernel)
		fmt.Printf("%-10s %12v %12v %12v %7.1f%% %7.1f%%\n",
			scheme, obs.Kernel, obs.Transfer, obs.Total,
			100*obs.TransferFraction, 100*pred.TransferFraction)
	}

	fmt.Println()
	fmt.Println("The kernel column is identical across schemes — a model that")
	fmt.Println("prices only the kernel (SWGPU) predicts the same time for all")
	fmt.Println("three rows; ATGPU's (α, β) terms separate them.")
	for i := 1; i < len(kernelTimes); i++ {
		if kernelTimes[i] != kernelTimes[0] {
			fmt.Println("note: kernel times diverged unexpectedly — check device determinism")
		}
	}
}
