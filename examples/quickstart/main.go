// Quickstart: predict a GPU algorithm's running time on the ATGPU model,
// execute it on the simulated GPU, and compare — the paper's core workflow
// in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"atgpu"
)

func main() {
	// A System pairs a simulated GTX 650 with calibrated cost parameters
	// (γ, λ, σ from kernel microbenchmarks; α, β from the transfer link).
	sys, err := atgpu.NewSystem(atgpu.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cp := sys.CostParams()
	fmt.Printf("calibrated: γ=%.3g op/s, λ=%.1f cycles, α=%.2gs, β=%.2gs/word\n\n",
		cp.Gamma, cp.Lambda, cp.Alpha, cp.Beta)

	const n = 1 << 20

	// Predict: vector addition analysed on the abstract model.
	pred, err := sys.AnalyzeVecAdd(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vecadd n=%d predicted on the model:\n", n)
	fmt.Printf("  rounds R = %d, Σ(I+O) = %d words\n",
		pred.Analysis.R(), pred.Analysis.TotalTransferWords())
	fmt.Printf("  GPU-cost (with transfer)    = %.4g s\n", pred.GPUCost)
	fmt.Printf("  SWGPU baseline (no transfer) = %.4g s\n", pred.SWGPUCost)
	fmt.Printf("  predicted transfer share ΔT  = %.1f%%\n\n", 100*pred.TransferFraction)

	// Observe: the same computation executed on the simulated device.
	rng := rand.New(rand.NewSource(42))
	a := make([]atgpu.Word, n)
	b := make([]atgpu.Word, n)
	for i := range a {
		a[i] = atgpu.Word(rng.Intn(1000))
		b[i] = atgpu.Word(rng.Intn(1000))
	}
	c, obs, err := sys.RunVecAdd(a, b)
	if err != nil {
		log.Fatal(err)
	}
	for i := range c {
		if c[i] != a[i]+b[i] {
			log.Fatalf("wrong result at %d: %d", i, c[i])
		}
	}
	fmt.Println("vecadd observed on the simulated GTX 650 (verified):")
	fmt.Printf("  kernel %v + transfer %v + sync %v = total %v\n",
		obs.Kernel, obs.Transfer, obs.Sync, obs.Total)
	fmt.Printf("  observed transfer share ΔE = %.1f%%\n\n", 100*obs.TransferFraction)

	// The paper's point: a model without data transfer (SWGPU) accounts
	// for only the kernel slice of the total; ATGPU tracks the whole.
	fmt.Printf("SWGPU explains %.0f%% of the total; ATGPU explains %.0f%%.\n",
		100*pred.SWGPUCost/obs.Total.Seconds(),
		100*pred.GPUCost/obs.Total.Seconds())
}
