// Out-of-core reduction: the paper's future-work experiment (§V). The
// input deliberately exceeds the device's global memory G, forcing
// partitioned processing — the situation ATGPU's global-memory constraint
// exists to expose. Two host-communication disciplines over identical work
// are compared: serial (transfer, reduce, transfer, …) and overlapped
// (double-buffered streams hiding transfer behind compute), illustrating
// the "differing host device communication requirements" the paper hoped
// a transfer-aware model would distinguish.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"atgpu"
)

func main() {
	// A deliberately tiny device: G = 2^16 words, so a 2^19-word input is
	// 8× out of core.
	opts := atgpu.DefaultOptions()
	opts.Device.GlobalWords = 1 << 16
	opts.Device.Name = "sim-gtx650-smallG"

	const n = 1 << 19
	rng := rand.New(rand.NewSource(3))
	in := make([]atgpu.Word, n)
	var want atgpu.Word
	for i := range in {
		in[i] = atgpu.Word(rng.Intn(2))
		want += in[i]
	}

	sys, err := atgpu.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}

	// In-core execution must fail: the model rejects algorithms whose
	// global footprint exceeds G.
	if _, _, err := sys.RunReduce(in); err == nil {
		log.Fatal("expected the in-core plan to exceed G")
	} else {
		fmt.Printf("in-core plan rejected as expected: %v\n\n", err)
	}

	fmt.Printf("out-of-core reduce, n=%d words, G=%d words\n\n", n, opts.Device.GlobalWords)
	fmt.Printf("%-12s %8s %14s %14s %8s\n", "chunk", "chunks", "serial", "overlapped", "speedup")
	// The device must hold two chunk buffers (double buffering) plus the
	// partials buffer, so the largest usable chunk is just under G/2.
	for _, chunk := range []int{1 << 12, 1 << 13, 1 << 14} {
		res, err := sys.RunOutOfCoreReduce(in, chunk)
		if err != nil {
			log.Fatal(err)
		}
		if res.Sum != want {
			log.Fatalf("chunk %d: wrong sum %d, want %d", chunk, res.Sum, want)
		}
		fmt.Printf("%-12d %8d %14v %14v %7.2fx\n",
			chunk, res.Chunks, res.SerialTime, res.OverlappedTime, res.Speedup())
	}

	fmt.Println("\nLarger chunks amortise the per-transaction α; overlap hides")
	fmt.Println("transfer behind kernels. Both effects are invisible to a model")
	fmt.Println("without data transfer.")
}
