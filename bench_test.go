package atgpu

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each figure bench regenerates that figure's data at
// a reduced input size so `go test -bench=.` completes in minutes; the
// full-size sweeps (the paper's exact axes) are produced by
// `go run ./cmd/atgpu-figures -full`.
//
// Figure benches report model-fidelity metrics via b.ReportMetric:
// delta_obs (ΔE), delta_pred (ΔT), and the share of observed total time
// each model's cost explains.

import (
	"fmt"
	"math/rand"
	"testing"

	"atgpu/internal/algorithms"
	"atgpu/internal/calibrate"
	"atgpu/internal/core"
	"atgpu/internal/experiments"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// benchSystem caches one calibrated system across benchmarks.
var benchSystem *System

func getSystem(b *testing.B) *System {
	b.Helper()
	if benchSystem == nil {
		sys, err := NewSystem(DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchSystem = sys
	}
	return benchSystem
}

func benchWords(n int, seed int64) []Word {
	rng := rand.New(rand.NewSource(seed))
	w := make([]Word, n)
	for i := range w {
		w[i] = Word(rng.Intn(2001) - 1000)
	}
	return w
}

// --- Table I -----------------------------------------------------------------

// BenchmarkTable1FeatureMatrix regenerates the paper's Table I.
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := models.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Figure 3: vector addition -------------------------------------------------

// BenchmarkFig3aVecAddPredicted evaluates the predicted ATGPU and SWGPU
// cost curves of Figure 3a.
func BenchmarkFig3aVecAddPredicted(b *testing.B) {
	sys := getSystem(b)
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1 << 18, 1 << 19, 1 << 20} {
			p, err := sys.AnalyzeVecAdd(n)
			if err != nil {
				b.Fatal(err)
			}
			if p.SWGPUCost >= p.GPUCost {
				b.Fatal("SWGPU should be below ATGPU")
			}
		}
	}
}

// BenchmarkFig3bVecAddObserved runs the observed side of Figure 3b: one
// full simulated round (transfer in, kernel, transfer out) at n = 2^18.
func BenchmarkFig3bVecAddObserved(b *testing.B) {
	sys := getSystem(b)
	const n = 1 << 18
	va := benchWords(n, 1)
	vb := benchWords(n, 2)
	var obs Observation
	for i := 0; i < b.N; i++ {
		var err error
		if _, obs, err = sys.RunVecAdd(va, vb); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*obs.TransferFraction, "ΔE_%")
}

// BenchmarkFig3cVecAddNormalised produces the normalised four-series panel
// over a reduced sweep.
func BenchmarkFig3cVecAddNormalised(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SizesVecAdd = []int{1 << 14, 1 << 15, 1 << 16}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		data, err := runner.RunVecAdd()
		if err != nil {
			b.Fatal(err)
		}
		fig := experiments.NormalisedFigure("fig3c", data)
		if len(fig.Series) != 4 {
			b.Fatal("normalised panel needs 4 series")
		}
	}
}

// --- Figure 4: reduction -------------------------------------------------------

// BenchmarkFig4aReductionPredicted evaluates Figure 4a's cost curves.
func BenchmarkFig4aReductionPredicted(b *testing.B) {
	sys := getSystem(b)
	for i := 0; i < b.N; i++ {
		for e := 16; e <= 20; e++ {
			p, err := sys.AnalyzeReduce(1 << e)
			if err != nil {
				b.Fatal(err)
			}
			if p.Analysis.R() < 2 {
				b.Fatal("reduction should be multi-round")
			}
		}
	}
}

// BenchmarkFig4bReductionObserved runs the observed side at n = 2^17:
// the full multi-round ping-pong reduction on the simulated device.
func BenchmarkFig4bReductionObserved(b *testing.B) {
	sys := getSystem(b)
	const n = 1 << 17
	in := benchWords(n, 3)
	var obs Observation
	for i := 0; i < b.N; i++ {
		var err error
		if _, obs, err = sys.RunReduce(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*obs.TransferFraction, "ΔE_%")
}

// --- Figure 5: matrix multiplication -------------------------------------------

// BenchmarkFig5aMatMulPredicted evaluates Figure 5a's cost curves.
func BenchmarkFig5aMatMulPredicted(b *testing.B) {
	sys := getSystem(b)
	for i := 0; i < b.N; i++ {
		for _, n := range []int{32, 64, 128, 256} {
			if _, err := sys.AnalyzeMatMul(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5bMatMulObserved runs the observed side at n = 64.
func BenchmarkFig5bMatMulObserved(b *testing.B) {
	sys := getSystem(b)
	const n = 64
	ma := benchWords(n*n, 4)
	mb := benchWords(n*n, 5)
	var obs Observation
	for i := 0; i < b.N; i++ {
		var err error
		if _, obs, err = sys.RunMatMul(ma, mb, n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*obs.TransferFraction, "ΔE_%")
}

// --- Figure 6: transfer proportions --------------------------------------------

// BenchmarkFig6TransferProportions computes ΔT vs ΔE for all three
// workloads and reports the mean absolute gap, the paper's Figure 6
// accuracy metric (≤1.5% vecadd, 5.49% reduction, 0.76% matmul on their
// hardware).
func BenchmarkFig6TransferProportions(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SizesVecAdd = []int{1 << 14, 1 << 16}
	cfg.SizesReduce = []int{1 << 14, 1 << 16}
	cfg.SizesMatMul = []int{32, 64}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var gapSum float64
	for i := 0; i < b.N; i++ {
		gapSum = 0
		for _, run := range []func() (*experiments.WorkloadData, error){
			runner.RunVecAdd, runner.RunReduce, runner.RunMatMul,
		} {
			data, err := run()
			if err != nil {
				b.Fatal(err)
			}
			s, err := experiments.Summarise(data)
			if err != nil {
				b.Fatal(err)
			}
			gapSum += s.MeanDeltaGap
		}
	}
	b.ReportMetric(100*gapSum/3, "mean|ΔT-ΔE|_%")
}

// BenchmarkSummaryStatistics regenerates the §IV-D summary (mean transfer
// shares, SWGPU captured share, slope ratios) on a reduced vecadd sweep.
func BenchmarkSummaryStatistics(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SizesVecAdd = []int{1 << 14, 1 << 15, 1 << 16}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var s experiments.Summary
	for i := 0; i < b.N; i++ {
		data, err := runner.RunVecAdd()
		if err != nil {
			b.Fatal(err)
		}
		if s, err = experiments.Summarise(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*s.MeanDeltaObserved, "ΔE_%")
	b.ReportMetric(100*s.SWGPUCaptured, "SWGPU_captured_%")
	b.ReportMetric(s.ATGPUSlopeRatio, "ATGPU_slope_ratio")
}

// --- Future-work extensions (§V) -------------------------------------------------

// BenchmarkExtScanObserved runs the prefix-sum verification workload (the
// paper's "further experiments on other computational problems").
func BenchmarkExtScanObserved(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.SizesReduce = []int{1 << 14}
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var gap float64
	for i := 0; i < b.N; i++ {
		data, err := runner.RunScan()
		if err != nil {
			b.Fatal(err)
		}
		s, err := experiments.Summarise(data)
		if err != nil {
			b.Fatal(err)
		}
		gap = s.MeanDeltaGap
	}
	b.ReportMetric(100*gap, "|ΔT-ΔE|_%")
}

// BenchmarkExtTransposeContrast runs the coalescing study: the model's q
// metric must order the naive and tiled variants as the device does.
func BenchmarkExtTransposeContrast(b *testing.B) {
	cfg := experiments.DefaultConfig()
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.TransposeContrast
	for i := 0; i < b.N; i++ {
		if res, err = runner.RunTransposeContrast(128); err != nil {
			b.Fatal(err)
		}
		if !res.ModelOrdersCorrectly {
			b.Fatal("model ordering mismatch")
		}
	}
	b.ReportMetric(res.NaiveQ/res.TiledQ, "q_ratio_naive/tiled")
	b.ReportMetric(float64(res.NaiveCycles)/float64(res.TiledCycles), "cycles_ratio_naive/tiled")
}

// BenchmarkExtDeviceSweep verifies the model across the device preset zoo
// ("verify the model using other GPUs").
func BenchmarkExtDeviceSweep(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunDeviceSweep(1<<16, transfer.Pageable, 0)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range points {
			gap := p.DeltaPredicted - p.DeltaObserved
			if gap < 0 {
				gap = -gap
			}
			if gap > worst {
				worst = gap
			}
		}
	}
	b.ReportMetric(100*worst, "worst|ΔT-ΔE|_%")
}

// BenchmarkExtReduceStrategies runs the reduction-strategy study ("further
// investigation of reduction algorithms on the ATGPU"), reporting how well
// the model's kernel-side cost orders the four designs against the device.
func BenchmarkExtReduceStrategies(b *testing.B) {
	cfg := experiments.DefaultConfig()
	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var agree float64
	for i := 0; i < b.N; i++ {
		points, err := runner.RunReduceStrategies(1 << 16)
		if err != nil {
			b.Fatal(err)
		}
		agree = experiments.StrategyOrderingAgreement(points)
	}
	b.ReportMetric(100*agree, "pairwise_agreement_%")
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblationClockSkip compares event-driven clock skipping against
// naive per-cycle stepping: identical results, very different simulation
// speed, justifying the scheduler design.
func BenchmarkAblationClockSkip(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		cfg := simgpu.GTX650()
		cfg.GlobalWords = 1 << 20
		cfg.DisableEventSkip = disable
		dev, err := simgpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := transfer.NewEngine(transfer.PCIeGen3x8Link(), transfer.Pageable)
		if err != nil {
			b.Fatal(err)
		}
		h, err := simgpu.NewHost(dev, eng, 0)
		if err != nil {
			b.Fatal(err)
		}
		base, err := h.Malloc(3 * (1 << 14))
		if err != nil {
			b.Fatal(err)
		}
		_ = base
		alg := algorithms.VecAdd{N: 1 << 13}
		prog, err := alg.Kernel(cfg.WarpWidth, 0, 1<<13, 1<<14)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dev.Launch(prog, alg.Blocks(cfg.WarpWidth)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("event-skip", func(b *testing.B) { run(b, false) })
	b.Run("per-cycle", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationOccupancy compares Expression (1) (perfect GPU) against
// Expression (2) (occupancy-adjusted GPU-cost): the ⌈k/(k'ℓ)⌉ factor is
// what lets the model price a real k'-multiprocessor machine.
func BenchmarkAblationOccupancy(b *testing.B) {
	sys := getSystem(b)
	p, err := sys.AnalyzeMatMul(256)
	if err != nil {
		b.Fatal(err)
	}
	cp := sys.CostParams()
	var perfect, gpu float64
	for i := 0; i < b.N; i++ {
		if perfect, err = core.PerfectCost(p.Analysis, cp); err != nil {
			b.Fatal(err)
		}
		if gpu, err = core.GPUCost(p.Analysis, cp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gpu/perfect, "gpu/perfect_cost_ratio")
}

// BenchmarkAblationCoalescing runs the same volume of global loads with
// coalesced vs b-strided addressing, showing the l-transactions rule's
// cost impact.
func BenchmarkAblationCoalescing(b *testing.B) {
	run := func(b *testing.B, stride int64) {
		cfg := simgpu.GTX650()
		cfg.GlobalWords = 1 << 22
		dev, err := simgpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prog := buildStrideLoads("abl-coalesce", 64, stride)
		var res simgpu.KernelResult
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err = dev.Launch(prog, 64); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.GlobalTransactions), "transactions")
		b.ReportMetric(float64(res.Stats.Cycles), "device_cycles")
	}
	b.Run("coalesced", func(b *testing.B) { run(b, 1) })
	b.Run("strided", func(b *testing.B) { run(b, 32) })
}

// BenchmarkAblationBankConflicts measures the serialisation cost of b-way
// shared-memory bank conflicts against the conflict-free layout the model
// assumes.
func BenchmarkAblationBankConflicts(b *testing.B) {
	run := func(b *testing.B, stride int64) {
		cfg := simgpu.GTX650()
		cfg.GlobalWords = 1 << 16
		dev, err := simgpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prog := buildStrideShared("abl-bank", 64, stride)
		var res simgpu.KernelResult
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err = dev.Launch(prog, 32); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.Cycles), "device_cycles")
		b.ReportMetric(float64(res.Stats.BankConflicts), "conflicts")
	}
	b.Run("conflict-free", func(b *testing.B) { run(b, 1) })
	b.Run("b-way-conflict", func(b *testing.B) { run(b, 32) })
}

// BenchmarkAblationOverlap compares the serial and double-buffered
// out-of-core schedules over identical work (future work §V).
func BenchmarkAblationOverlap(b *testing.B) {
	sys := getSystem(b)
	in := benchWords(1<<16, 6)
	var res algorithms.OutOfCoreResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = sys.RunOutOfCoreReduce(in, 1<<13); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "overlap_speedup_x")
}

// BenchmarkAblationCalibration compares the prediction accuracy of
// calibrated cost parameters against raw datasheet parameters (γ from the
// clock, λ from the architectural latency): the datasheet instantiation
// ignores latency hiding and overshoots, which is why the paper's "set γ
// for a particular GPU" step matters.
func BenchmarkAblationCalibration(b *testing.B) {
	sys := getSystem(b)
	const n = 1 << 16
	va := benchWords(n, 7)
	vb := benchWords(n, 8)
	_, obs, err := sys.RunVecAdd(va, vb)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := sys.AnalyzeVecAdd(n)
	if err != nil {
		b.Fatal(err)
	}
	link := transfer.PCIeGen3x8Link()
	m, err := link.Model(transfer.Pageable)
	if err != nil {
		b.Fatal(err)
	}
	sheet := calibrate.Datasheet(sys.Options().Device, m, sys.Options().SyncCost)
	var calibratedErr, datasheetErr float64
	for i := 0; i < b.N; i++ {
		sheetCost, err := core.GPUCost(pred.Analysis, sheet)
		if err != nil {
			b.Fatal(err)
		}
		total := obs.Total.Seconds()
		calibratedErr = relErr(pred.GPUCost, total)
		datasheetErr = relErr(sheetCost, total)
	}
	b.ReportMetric(100*calibratedErr, "calibrated_err_%")
	b.ReportMetric(100*datasheetErr, "datasheet_err_%")
}

func relErr(pred, obs float64) float64 {
	if obs == 0 {
		return 0
	}
	d := pred - obs
	if d < 0 {
		d = -d
	}
	return d / obs
}

// --- kernel builders for ablations ---------------------------------------------

func buildStrideLoads(name string, loads int, stride int64) *kernel.Program {
	return buildStrideKernel(name, loads, stride, false)
}

func buildStrideShared(name string, accesses int, stride int64) *kernel.Program {
	return buildStrideKernel(name, accesses, stride, true)
}

func buildStrideKernel(name string, count int, stride int64, shared bool) *kernel.Program {
	sharedWords := 0
	if shared {
		sharedWords = 32 * 32
	}
	kb := kernel.NewBuilder(fmt.Sprintf("%s-s%d", name, stride), sharedWords)
	j := kb.Reg()
	addr := kb.Reg()
	v := kb.Reg()
	kb.LaneID(j)
	kb.Mul(addr, j, kernel.Imm(stride))
	kb.Const(v, 1)
	for i := 0; i < count; i++ {
		if shared {
			kb.StShared(addr, v)
		} else {
			kb.LdGlobal(v, addr)
		}
	}
	return kb.MustBuild()
}

// --- Observability overhead -------------------------------------------------

// benchObsRun drives one full pipelined vecadd per iteration with the
// given options; BenchmarkObsOff versus BenchmarkObsOn is the measured
// cost of the unified tracing and metrics layer. The Off variant is the
// instrumented build with nil sinks — the acceptance requirement is
// that this disabled path stays within noise (≤2%) of the pre-obs
// hot path, which it meets by paying only nil checks (and zero
// allocations, see obs.TestDisabledPathAllocatesNothing).
func benchObsRun(b *testing.B, opts Options) {
	b.Helper()
	opts.Device = simgpu.Tiny()
	sys, err := NewSystem(opts)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	x := benchWords(n, 1)
	y := benchWords(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.RunVecAddPipelined(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOff measures the instrumented build with observability
// disabled (the default): the baseline for the overhead comparison.
func BenchmarkObsOff(b *testing.B) {
	benchObsRun(b, DefaultOptions())
}

// BenchmarkObsOn measures the same run with tracing and metrics fully
// enabled, bounding the cost of turning observability on.
func BenchmarkObsOn(b *testing.B) {
	opts := DefaultOptions()
	opts.Trace = true
	opts.Metrics = true
	benchObsRun(b, opts)
}
