// Package atgpu is a Go implementation of the ATGPU model — "An Improved
// Abstract GPU Model with Data Transfer" (Carroll & Wong, ICPP 2017
// Workshops) — together with everything needed to validate it: a
// cycle-approximate simulated GPU, a host↔device transfer engine with
// Boyer-style costs, the SWGPU and AGPU baseline models, the paper's three
// evaluation workloads, and an experiment harness that regenerates every
// table and figure of the paper's evaluation section.
//
// # The model
//
// ATGPU(p, b, M, G) describes a device with p cores grouped b to a
// multiprocessor, M words of shared memory per multiprocessor and G words
// of global memory. Algorithms execute in rounds — inward transfer, kernel,
// outward transfer, synchronisation — and are analysed per round by
// operation count tᵢ, block-transaction count qᵢ, space usage, and transfer
// volumes Iᵢ/Oᵢ. Two cost functions price an analysis: the perfect-GPU cost
//
//	Σᵢ ( TI(i) + (tᵢ + λ·qᵢ)/γ + TO(i) + σ )
//
// and the GPU-cost, which simulates a real machine of k' multiprocessors by
// scaling compute with the occupancy factor ⌈k/(k'ℓ)⌉, ℓ = min(⌊M/m⌋, H).
// TI(i) = Îᵢα + Iᵢβ is the Boyer transfer cost; capturing it is the
// model's contribution over SWGPU and AGPU.
//
// # Quick start
//
//	sys, err := atgpu.NewSystem(atgpu.DefaultOptions())
//	...
//	report, err := sys.AnalyzeVecAdd(1_000_000) // predicted costs
//	result, err := sys.RunVecAdd(a, b)          // simulated execution
//
// See examples/ for complete programs and cmd/atgpu-figures for the
// paper-reproduction harness.
package atgpu
