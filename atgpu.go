package atgpu

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"atgpu/internal/algorithms"
	"atgpu/internal/analyze"
	"atgpu/internal/calibrate"
	"atgpu/internal/core"
	"atgpu/internal/experiments"
	"atgpu/internal/faults"
	"atgpu/internal/kernel"
	"atgpu/internal/models"
	"atgpu/internal/obs"
	"atgpu/internal/simgpu"
	"atgpu/internal/transfer"
)

// Word is the model's machine word (64-bit signed integer).
type Word = int64

// LintMode selects the static-analysis pre-flight applied to every kernel
// launch (see internal/analyze).
type LintMode = analyze.Mode

const (
	// LintOff disables the pre-flight; launches are untouched.
	LintOff = analyze.ModeOff
	// LintWarn analyses every launched kernel and reports findings to
	// LintWriter, but never refuses a launch.
	LintWarn = analyze.ModeWarn
	// LintError additionally refuses launches whose kernels carry
	// error-severity findings (races, divergent barriers, definite traps),
	// wrapping ErrLintRefused.
	LintError = analyze.ModeError
)

// ErrLintRefused is wrapped by launch errors when LintError pre-flight finds
// an error-severity problem in a kernel about to launch.
var ErrLintRefused = analyze.ErrRefused

// ParseLintMode reads a LintMode from its flag spelling ("off"/"", "warn",
// "error").
func ParseLintMode(s string) (LintMode, error) { return analyze.ParseMode(s) }

// Options configures a System.
type Options struct {
	// Device selects the simulated GPU; DefaultOptions uses the GTX650
	// preset of the paper's testbed.
	Device simgpu.Config
	// Scheme selects the host↔device transfer technique.
	Scheme transfer.Scheme
	// SyncCost is σ, the fixed synchronisation cost per round.
	SyncCost time.Duration

	// Workers is the goroutine count experiment sweeps built from these
	// options dispatch their points to (see ExperimentConfig). 0 uses
	// runtime.GOMAXPROCS(0); 1 is sequential. Sweep output is identical
	// for any worker count.
	Workers int

	// Chunks is the chunk (or matmul band) count the pipelined runs and
	// sweeps split their inputs into. 0 uses the experiments default (4).
	Chunks int

	// FaultRate enables deterministic fault injection when > 0: the
	// probability, in [0,1], of each transfer or launch drawing a fault.
	// At 0 no injector is attached and behaviour is identical to a build
	// without the fault machinery.
	FaultRate float64
	// FaultSeed drives the injector; the same seed replays the same
	// faults, retries and simulated timeline.
	FaultSeed int64
	// MaxRetries overrides the transfer retry budget when > 0.
	MaxRetries int
	// Watchdog overrides the kernel watchdog timeout when > 0.
	Watchdog time.Duration

	// Trace records every run onto a unified Perfetto timeline: host
	// resource occupancy, per-stream spans, embedded device block spans
	// and transfer/retry/fault events, all in simulated time. Off by
	// default; the uninstrumented path stays allocation-free.
	Trace bool
	// Metrics collects deterministic counters/gauges/histograms across
	// all layers, exposable as JSON or Prometheus text.
	Metrics bool
	// TraceMaxEvents caps the trace recorder (0 = obs.DefaultMaxEvents).
	TraceMaxEvents int

	// Lint arms a static-analysis pre-flight on every kernel launch:
	// LintWarn reports findings, LintError also refuses launches with
	// error-severity findings. Off by default; the unlinted path is
	// untouched.
	Lint LintMode
	// LintWriter receives the textual lint report for kernels with
	// findings (nil discards it; refusal errors carry the worst finding
	// regardless).
	LintWriter io.Writer
}

// ObsOptions translates the observability selection for internal layers.
func (o Options) ObsOptions() obs.Options {
	return obs.Options{Trace: o.Trace, Metrics: o.Metrics, TraceMaxEvents: o.TraceMaxEvents}
}

// DefaultOptions matches the paper's evaluation setup: GTX650-like device,
// pageable transfers (the cudaMemcpy default, which reproduces the paper's
// ~84% vecadd transfer share), σ = 50 µs.
func DefaultOptions() Options {
	return Options{
		Device:   simgpu.GTX650(),
		Scheme:   transfer.Pageable,
		SyncCost: 50 * time.Microsecond,
	}
}

// ExperimentConfig translates the options into a sweep configuration for
// the experiments runner (cmd/atgpu `sweep`, cmd/atgpu-figures), threading
// through the device, transfer scheme, σ, worker count and fault wiring.
func (o Options) ExperimentConfig() experiments.Config {
	return experiments.Config{
		Device:     o.Device,
		Scheme:     o.Scheme,
		SyncCost:   o.SyncCost,
		Seed:       1,
		Workers:    o.Workers,
		Chunks:     o.Chunks,
		FaultRate:  o.FaultRate,
		FaultSeed:  o.FaultSeed,
		MaxRetries: o.MaxRetries,
		Watchdog:   o.Watchdog,
		Obs:        o.ObsOptions(),
		Lint:       o.Lint,
		LintWriter: o.LintWriter,
	}
}

// System bundles a simulated device, a transfer link and calibrated cost
// parameters — everything needed to both predict (on the abstract model)
// and observe (on the simulator) an algorithm's running time.
type System struct {
	opts   Options
	link   *transfer.Link
	params core.CostParams
	// hostSeq numbers the hosts built, giving each run a fresh
	// deterministically seeded fault injector. Atomic so a System shared
	// across goroutines stays race-free (though the sequence each run
	// draws then depends on scheduling; single-goroutine use replays
	// exactly).
	hostSeq atomic.Int64
}

// NewSystem validates the options and calibrates cost parameters for the
// device, which takes a few milliseconds of simulation. Calibration always
// runs fault-free: cost parameters describe the healthy machine.
func NewSystem(opts Options) (*System, error) {
	if err := opts.Device.Validate(); err != nil {
		return nil, err
	}
	if opts.SyncCost < 0 {
		return nil, fmt.Errorf("atgpu: negative sync cost %v", opts.SyncCost)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("atgpu: negative workers %d", opts.Workers)
	}
	if opts.Chunks < 0 {
		return nil, fmt.Errorf("atgpu: negative chunks %d", opts.Chunks)
	}
	if opts.FaultRate < 0 || opts.FaultRate > 1 {
		return nil, fmt.Errorf("atgpu: fault rate %v outside [0,1]", opts.FaultRate)
	}
	if opts.MaxRetries < 0 {
		return nil, fmt.Errorf("atgpu: negative max retries %d", opts.MaxRetries)
	}
	if opts.Watchdog < 0 {
		return nil, fmt.Errorf("atgpu: negative watchdog %v", opts.Watchdog)
	}
	link := transfer.PCIeGen3x8Link()

	calCfg := opts.Device
	if calCfg.GlobalWords > 1<<22 {
		calCfg.GlobalWords = 1 << 22
	}
	dev, err := simgpu.New(calCfg)
	if err != nil {
		return nil, err
	}
	dev.SetUniformProver(analyze.UniformProver)
	eng, err := transfer.NewEngine(link, opts.Scheme)
	if err != nil {
		return nil, err
	}
	cal, err := calibrate.Run(dev, eng, opts.SyncCost)
	if err != nil {
		return nil, err
	}
	return &System{opts: opts, link: link, params: cal.Params}, nil
}

// CostParams returns the calibrated γ, λ, σ, α, β, k', H.
func (s *System) CostParams() core.CostParams { return s.params }

// Options returns the system options.
func (s *System) Options() Options { return s.opts }

// ModelParams returns the perfect-GPU machine instance for a launch of
// blocks thread blocks on this system's device geometry.
func (s *System) ModelParams(blocks int) core.Params {
	return core.ForProblem(blocks, s.opts.Device.WarpWidth,
		s.opts.Device.SharedWords, s.opts.Device.GlobalWords)
}

// Prediction is the model-side account of an algorithm: the per-round
// analysis plus both cost-function evaluations and the SWGPU baseline.
type Prediction struct {
	// Analysis is the per-round ATGPU account.
	Analysis *core.Analysis
	// PerfectCost is Expression (1) in seconds.
	PerfectCost float64
	// GPUCost is Expression (2) in seconds.
	GPUCost float64
	// SWGPUCost is the GPU-cost with transfer removed (the baseline).
	SWGPUCost float64
	// TransferFraction is Δ_T, the predicted transfer share of GPUCost.
	TransferFraction float64
}

func (s *System) predict(a *core.Analysis) (*Prediction, error) {
	perfect, err := core.PerfectCost(a, s.params)
	if err != nil {
		return nil, err
	}
	bd, err := core.GPUCostBreakdown(a, s.params)
	if err != nil {
		return nil, err
	}
	sw, err := models.SWGPUCost(a, s.params)
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Analysis:         a,
		PerfectCost:      perfect,
		GPUCost:          bd.Total(),
		SWGPUCost:        sw,
		TransferFraction: bd.TransferFraction(),
	}, nil
}

// AnalyzeVecAdd predicts vector addition of length n (paper §IV-A).
func (s *System) AnalyzeVecAdd(n int) (*Prediction, error) {
	alg := algorithms.VecAdd{N: n}
	a, err := alg.Analyze(s.ModelParams(alg.Blocks(s.opts.Device.WarpWidth)))
	if err != nil {
		return nil, err
	}
	return s.predict(a)
}

// AnalyzeReduce predicts reduction of length n (paper §IV-B).
func (s *System) AnalyzeReduce(n int) (*Prediction, error) {
	b := s.opts.Device.WarpWidth
	a, err := algorithms.Reduce{N: n}.Analyze(s.ModelParams((n + b - 1) / b))
	if err != nil {
		return nil, err
	}
	return s.predict(a)
}

// AnalyzeMatMul predicts n×n matrix multiplication (paper §IV-C).
func (s *System) AnalyzeMatMul(n int) (*Prediction, error) {
	alg := algorithms.MatMul{N: n}
	a, err := alg.Analyze(s.ModelParams(alg.Blocks(s.opts.Device.WarpWidth)))
	if err != nil {
		return nil, err
	}
	return s.predict(a)
}

// Analyze prices a caller-supplied analysis, for algorithms designed
// directly against the model.
func (s *System) Analyze(a *core.Analysis) (*Prediction, error) { return s.predict(a) }

// Observation is the simulator-side account of one run.
type Observation struct {
	// Total, Kernel, Transfer and Sync decompose the simulated wall time.
	Total, Kernel, Transfer, Sync time.Duration
	// Rounds is the number of model rounds executed.
	Rounds int
	// Stats aggregates kernel-side counters (transactions, conflicts…).
	Stats simgpu.KernelStats
	// TransferFraction is Δ_E, the observed transfer share.
	TransferFraction float64
	// Transfers carries the engine totals, including retry and corruption
	// counters under fault injection.
	Transfers transfer.Stats
	// Resilience counts the host's fault-recovery work (all zero without
	// an injector).
	Resilience simgpu.ResilienceStats
	// FaultLog is the injector's event log (nil without an injector).
	FaultLog []string
	// Report carries the run's unified trace and metrics snapshot (nil
	// unless Options.Trace or Options.Metrics is set).
	Report *obs.Report
}

func observation(h *simgpu.Host) Observation {
	rep := h.Report()
	o := Observation{
		Total:            rep.Total,
		Kernel:           rep.Kernel,
		Transfer:         rep.Transfer,
		Sync:             rep.Sync,
		Rounds:           rep.Rounds,
		Stats:            rep.Stats,
		TransferFraction: rep.TransferFraction(),
		Transfers:        rep.Transfers,
		Resilience:       rep.Resilience,
		Report:           h.SnapshotObs(),
	}
	for _, ev := range h.FaultEvents() {
		o.FaultLog = append(o.FaultLog, ev.String())
	}
	return o
}

// newHost builds a fresh device+host pair sized for footprint words. A
// footprint the device preset cannot hold fails here, naming the sizes,
// rather than as an opaque Malloc error mid-run. With FaultRate > 0 the
// pair is armed with a per-run seeded injector shared between the transfer
// engine and the host.
func (s *System) newHost(footprint int) (*simgpu.Host, error) {
	devCfg := s.opts.Device
	slack := 4 * devCfg.WarpWidth
	need := footprint + slack
	if need > devCfg.GlobalWords {
		return nil, fmt.Errorf("atgpu: footprint %d words (+%d alignment slack) exceeds device %s global memory G=%d",
			footprint, slack, devCfg.Name, devCfg.GlobalWords)
	}
	devCfg.GlobalWords = need
	dev, err := simgpu.New(devCfg)
	if err != nil {
		return nil, err
	}
	dev.SetUniformProver(analyze.UniformProver)
	eng, err := transfer.NewEngine(s.link, s.opts.Scheme)
	if err != nil {
		return nil, err
	}
	h, err := simgpu.NewHost(dev, eng, s.opts.SyncCost)
	if err != nil {
		return nil, err
	}
	if s.opts.FaultRate > 0 {
		seq := s.hostSeq.Add(1) - 1
		inj, err := faults.NewRate(faults.RateConfig{
			Seed:         s.opts.FaultSeed + 1_000_003*seq,
			TransferRate: s.opts.FaultRate,
			KernelRate:   s.opts.FaultRate,
		})
		if err != nil {
			return nil, err
		}
		policy := transfer.DefaultRetryPolicy()
		if s.opts.MaxRetries > 0 {
			policy.MaxRetries = s.opts.MaxRetries
		}
		policy.Seed = s.opts.FaultSeed + 1_000_003*seq + 1
		if err := eng.SetFaults(inj, policy); err != nil {
			return nil, err
		}
		if err := h.SetFaults(inj, s.opts.Watchdog, 0); err != nil {
			return nil, err
		}
	}
	if o := s.opts.ObsOptions(); o.Enabled() {
		h.SetObs(o.New())
		if o.Trace {
			// A device tracer embeds per-block spans in the trace.
			h.SetTracer(&simgpu.Tracer{MaxEvents: o.TraceMaxEvents})
		}
	}
	if s.opts.Lint != LintOff {
		// Analyse against the machine the launch actually targets (the
		// footprint-sized device), so bounds findings match its traps.
		cp := s.params
		h.SetPreLaunch(analyze.Gate(analyze.FromConfig(devCfg), &cp,
			s.opts.Lint, s.opts.LintWriter))
	}
	return h, nil
}

// Lint statically analyses a kernel for a launch of the given block count on
// this system's device, without running anything: shared-memory races,
// barrier divergence, out-of-bounds accesses, memory-performance hazards and
// an Expression (1)/(2) cost estimate using the calibrated parameters.
func (s *System) Lint(prog *kernel.Program, blocks int) (*analyze.Report, error) {
	cp := s.params
	return analyze.Program(prog, analyze.Options{
		Machine: analyze.FromConfig(s.opts.Device),
		Blocks:  blocks,
		Cost:    &cp,
	})
}

// RunVecAdd executes A+B on the simulated device and returns the result
// with its observation.
func (s *System) RunVecAdd(a, b []Word) ([]Word, Observation, error) {
	alg := algorithms.VecAdd{N: len(a)}
	h, err := s.newHost(alg.GlobalWords())
	if err != nil {
		return nil, Observation{}, err
	}
	c, err := alg.Run(h, a, b)
	if err != nil {
		return nil, Observation{}, err
	}
	return c, observation(h), nil
}

// RunReduce executes the sum reduction on the simulated device.
func (s *System) RunReduce(input []Word) (Word, Observation, error) {
	alg := algorithms.Reduce{N: len(input)}
	h, err := s.newHost(alg.GlobalWords(s.opts.Device.WarpWidth))
	if err != nil {
		return 0, Observation{}, err
	}
	sum, err := alg.Run(h, input)
	if err != nil {
		return 0, Observation{}, err
	}
	return sum, observation(h), nil
}

// RunMatMul executes C = A×B (row-major n×n) on the simulated device.
func (s *System) RunMatMul(a, b []Word, n int) ([]Word, Observation, error) {
	alg := algorithms.MatMul{N: n}
	h, err := s.newHost(alg.GlobalWords())
	if err != nil {
		return nil, Observation{}, err
	}
	c, err := alg.Run(h, a, b)
	if err != nil {
		return nil, Observation{}, err
	}
	return c, observation(h), nil
}

// RunOutOfCoreReduce executes the partitioned reduction (future work §V),
// comparing serial and overlapped host-communication schedules.
func (s *System) RunOutOfCoreReduce(input []Word, chunkWords int) (algorithms.OutOfCoreResult, error) {
	alg := algorithms.OutOfCoreReduce{N: len(input), ChunkWords: chunkWords}
	b := s.opts.Device.WarpWidth
	footprint := 2*chunkWords + (chunkWords+b-1)/b
	h, err := s.newHost(footprint)
	if err != nil {
		return algorithms.OutOfCoreResult{}, err
	}
	return alg.Run(h, input)
}

// pipelineStreams is the stream count of the facade's overlapped runs:
// classic double buffering, matching the experiments sweeps.
const pipelineStreams = 2

// chunks resolves the effective chunk count of the pipelined runs.
func (o Options) chunks() int {
	if o.Chunks > 0 {
		return o.Chunks
	}
	return 4
}

// AnalyzeVecAddPipelined prices chunked vector addition with the
// overlapped-cost model (Expression 2 with per-round pipelining).
func (s *System) AnalyzeVecAddPipelined(n int) (core.PipelinedCost, error) {
	chunks := s.opts.chunks()
	b := s.opts.Device.WarpWidth
	alg := algorithms.PipelinedVecAdd{N: n, Chunks: chunks, Streams: pipelineStreams}
	chunkLen := (n + chunks - 1) / chunks
	a, err := alg.Analyze(s.ModelParams((chunkLen + b - 1) / b))
	if err != nil {
		return core.PipelinedCost{}, err
	}
	return core.GPUCostPipelined(a, s.params)
}

// AnalyzeReducePipelined prices the chunked reduction with the
// overlapped-cost model.
func (s *System) AnalyzeReducePipelined(n int) (core.PipelinedCost, error) {
	chunks := s.opts.chunks()
	b := s.opts.Device.WarpWidth
	alg := algorithms.PipelinedReduce{N: n, Chunks: chunks, Streams: pipelineStreams}
	chunkLen := (n + chunks - 1) / chunks
	a, err := alg.Analyze(s.ModelParams((chunkLen + b - 1) / b))
	if err != nil {
		return core.PipelinedCost{}, err
	}
	return core.GPUCostPipelined(a, s.params)
}

// AnalyzeMatMulPipelined prices row-banded matrix multiplication with the
// overlapped-cost model.
func (s *System) AnalyzeMatMulPipelined(n int) (core.PipelinedCost, error) {
	chunks := s.opts.chunks()
	b := s.opts.Device.WarpWidth
	alg := algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: pipelineStreams}
	tiles := n / b
	bands := chunks
	if tiles > 0 && bands > tiles {
		bands = tiles
	}
	bandTiles := tiles
	if bands > 0 {
		bandTiles = (tiles + bands - 1) / bands
	}
	a, err := alg.Analyze(s.ModelParams(bandTiles * tiles))
	if err != nil {
		return core.PipelinedCost{}, err
	}
	return core.GPUCostPipelined(a, s.params)
}

// PipelineRun compares one workload's sequential-chunked schedule against
// the overlapped multi-stream schedule on identical inputs.
type PipelineRun struct {
	// Chunks and Streams describe the overlapped schedule; the sequential
	// baseline runs the same chunks on a single stream.
	Chunks, Streams int
	// Sequential and Pipelined are the two runs' observations.
	Sequential, Pipelined Observation
	// Saving is Sequential.Total − Pipelined.Total.
	Saving time.Duration
	// Report folds both runs' observability reports onto one timeline —
	// the sequential schedule's spans tagged "seq/...", the overlapped
	// schedule's "pipe/..." — so the H2D/compute/D2H overlap is visible
	// next to the baseline in one Perfetto view (nil unless
	// Options.Trace or Options.Metrics is set).
	Report *obs.Report
}

// SavingFraction is the saving over the sequential total (0 when
// degenerate).
func (p PipelineRun) SavingFraction() float64 {
	if p.Sequential.Total <= 0 {
		return 0
	}
	return float64(p.Saving) / float64(p.Sequential.Total)
}

// runPipelined executes both schedules; footprint and run see the stream
// count (1 for the baseline, Streams for the overlapped schedule).
func (s *System) runPipelined(chunks int,
	footprint func(streams int) (int, error),
	run func(h *simgpu.Host, streams int) error) (PipelineRun, error) {
	pr := PipelineRun{Chunks: chunks, Streams: pipelineStreams}
	observe := func(streams int) (Observation, error) {
		words, err := footprint(streams)
		if err != nil {
			return Observation{}, err
		}
		h, err := s.newHost(words)
		if err != nil {
			return Observation{}, err
		}
		if err := run(h, streams); err != nil {
			return Observation{}, err
		}
		return observation(h), nil
	}
	var err error
	if pr.Sequential, err = observe(1); err != nil {
		return pr, err
	}
	if pr.Pipelined, err = observe(pr.Streams); err != nil {
		return pr, err
	}
	pr.Saving = pr.Sequential.Total - pr.Pipelined.Total
	if o := s.opts.ObsOptions(); o.Enabled() {
		pr.Report = &obs.Report{}
		if o.Trace {
			pr.Report.Trace = obs.NewRecorder(o.TraceMaxEvents)
		}
		pr.Report.Merge(pr.Sequential.Report, "seq")
		pr.Report.Merge(pr.Pipelined.Report, "pipe")
	}
	return pr, nil
}

// RunVecAddPipelined executes A+B with the chunked pipeline, returning the
// result of the overlapped run and the schedule comparison.
func (s *System) RunVecAddPipelined(a, b []Word) ([]Word, PipelineRun, error) {
	chunks := s.opts.chunks()
	width := s.opts.Device.WarpWidth
	var out []Word
	pr, err := s.runPipelined(chunks,
		func(streams int) (int, error) {
			return algorithms.PipelinedVecAdd{N: len(a), Chunks: chunks, Streams: streams}.GlobalWords(width)
		},
		func(h *simgpu.Host, streams int) error {
			c, err := algorithms.PipelinedVecAdd{N: len(a), Chunks: chunks, Streams: streams}.Run(h, a, b)
			if err != nil {
				return err
			}
			out = c
			return nil
		})
	return out, pr, err
}

// RunReducePipelined executes the chunked sum reduction with per-chunk
// partials combined on the host.
func (s *System) RunReducePipelined(input []Word) (Word, PipelineRun, error) {
	chunks := s.opts.chunks()
	width := s.opts.Device.WarpWidth
	var sum Word
	pr, err := s.runPipelined(chunks,
		func(streams int) (int, error) {
			return algorithms.PipelinedReduce{N: len(input), Chunks: chunks, Streams: streams}.GlobalWords(width)
		},
		func(h *simgpu.Host, streams int) error {
			got, err := algorithms.PipelinedReduce{N: len(input), Chunks: chunks, Streams: streams}.Run(h, input)
			if err != nil {
				return err
			}
			sum = got
			return nil
		})
	return sum, pr, err
}

// RunMatMulPipelined executes C = A×B by row bands with B resident.
func (s *System) RunMatMulPipelined(a, b []Word, n int) ([]Word, PipelineRun, error) {
	chunks := s.opts.chunks()
	width := s.opts.Device.WarpWidth
	var out []Word
	pr, err := s.runPipelined(chunks,
		func(streams int) (int, error) {
			return algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: streams}.GlobalWords(width)
		},
		func(h *simgpu.Host, streams int) error {
			c, err := algorithms.PipelinedMatMul{N: n, Chunks: chunks, Streams: streams}.Run(h, a, b)
			if err != nil {
				return err
			}
			out = c
			return nil
		})
	return out, pr, err
}

// TableI returns the paper's model feature comparison.
func TableI() string { return models.TableI() }
