module atgpu

go 1.22
