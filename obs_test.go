package atgpu

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atgpu/internal/simgpu"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden observability fixtures under testdata/")

// goldenTracePath is the checked-in Perfetto trace of the fixture run.
const goldenTracePath = "testdata/pipelined_reduce_trace.json"

// tracedReduceRun executes the golden fixture scenario: a 256-word
// pipelined reduction on the Tiny device with full observability on.
// Inputs, schedule and clock are all deterministic, so the rendered
// trace must be byte-stable across runs, machines and worker counts.
func tracedReduceRun(t *testing.T) *PipelineRun {
	t.Helper()
	opts := DefaultOptions()
	opts.Device = simgpu.Tiny()
	opts.Trace = true
	opts.Metrics = true
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := make([]Word, 256)
	for i := range in {
		in[i] = Word(rng.Intn(100))
	}
	sum, pr, err := sys.RunReducePipelined(in)
	if err != nil {
		t.Fatal(err)
	}
	var want Word
	for _, v := range in {
		want += v
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if pr.Report == nil || pr.Report.Trace == nil {
		t.Fatal("traced run returned no report")
	}
	return &pr
}

func renderTrace(t *testing.T, pr *PipelineRun) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pr.Report.Trace.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenPipelinedReduceTrace pins the exact Perfetto JSON the
// fixture run exports. A diff here means the trace schema or the
// simulated schedule changed; regenerate with
//
//	go test -run TestGoldenPipelinedReduceTrace -update-golden .
//
// and review the diff like any other golden change.
func TestGoldenPipelinedReduceTrace(t *testing.T) {
	got := renderTrace(t, tracedReduceRun(t))
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenTracePath, len(got))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from %s (%d vs %d bytes); rerun with -update-golden and review",
			goldenTracePath, len(got), len(want))
	}
}

// TestTraceRunToRunStable renders the fixture twice from scratch and
// demands byte equality — the in-process half of the golden guarantee.
func TestTraceRunToRunStable(t *testing.T) {
	a := renderTrace(t, tracedReduceRun(t))
	b := renderTrace(t, tracedReduceRun(t))
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs rendered different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTracedRunCoversAllLayers checks the one-timeline promise: the
// fixture's trace holds spans from the host resource tracks, the
// per-stream view, the embedded device block slices and the transfer
// engine, under both schedule tags.
func TestTracedRunCoversAllLayers(t *testing.T) {
	pr := tracedReduceRun(t)
	seen := map[string]bool{}
	for _, s := range pr.Report.Trace.Spans() {
		seen[s.Proc] = true
	}
	for _, want := range []string{
		"seq/host", "seq/streams", "seq/device", "seq/transfer",
		"pipe/host", "pipe/streams", "pipe/device", "pipe/transfer",
	} {
		if !seen[want] {
			t.Errorf("trace missing process %q (have %v)", want, seen)
		}
	}
	snap := pr.Report.Metrics
	if snap.Empty() {
		t.Fatal("metrics snapshot empty")
	}
	for _, want := range []string{
		"atgpu_host_launches_total",
		"atgpu_transfer_in_words_total",
	} {
		if _, ok := snap.Counters[want]; !ok {
			t.Errorf("metrics missing counter %s", want)
		}
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "atgpu_host_total_ns") {
		t.Error("Prometheus exposition missing atgpu_host_total_ns gauge")
	}
}
