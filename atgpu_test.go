package atgpu

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"atgpu/internal/core"
	"atgpu/internal/simgpu"
)

// testSystem builds a System over the small Tiny device so unit tests stay
// fast.
func testSystem(t *testing.T) *System {
	t.Helper()
	opts := DefaultOptions()
	opts.Device = simgpu.Tiny()
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Device.NumSMs = 0
	if _, err := NewSystem(opts); err == nil {
		t.Error("invalid device accepted")
	}
	opts = DefaultOptions()
	opts.SyncCost = -time.Second
	if _, err := NewSystem(opts); err == nil {
		t.Error("negative sync cost accepted")
	}
}

func TestSystemPredictions(t *testing.T) {
	sys := testSystem(t)
	for _, tc := range []struct {
		name string
		pred func() (*Prediction, error)
	}{
		{"vecadd", func() (*Prediction, error) { return sys.AnalyzeVecAdd(1000) }},
		{"reduce", func() (*Prediction, error) { return sys.AnalyzeReduce(1000) }},
		{"matmul", func() (*Prediction, error) { return sys.AnalyzeMatMul(16) }},
	} {
		p, err := tc.pred()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.GPUCost <= 0 || p.PerfectCost <= 0 || p.SWGPUCost <= 0 {
			t.Errorf("%s: non-positive costs: %+v", tc.name, p)
		}
		if p.PerfectCost > p.GPUCost+1e-12 {
			t.Errorf("%s: perfect cost %g exceeds GPU cost %g", tc.name, p.PerfectCost, p.GPUCost)
		}
		if p.SWGPUCost >= p.GPUCost {
			t.Errorf("%s: SWGPU %g not below ATGPU %g", tc.name, p.SWGPUCost, p.GPUCost)
		}
		if p.TransferFraction <= 0 || p.TransferFraction >= 1 {
			t.Errorf("%s: ΔT = %g", tc.name, p.TransferFraction)
		}
		if p.Analysis == nil || p.Analysis.R() < 1 {
			t.Errorf("%s: missing analysis", tc.name)
		}
	}
}

func TestSystemRunVecAdd(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(1))
	n := 100
	a := make([]Word, n)
	b := make([]Word, n)
	for i := range a {
		a[i] = Word(rng.Intn(100))
		b[i] = Word(rng.Intn(100))
	}
	c, obs, err := sys.RunVecAdd(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != a[i]+b[i] {
			t.Fatalf("c[%d] = %d", i, c[i])
		}
	}
	if obs.Total <= 0 || obs.Kernel <= 0 || obs.Transfer <= 0 {
		t.Fatalf("observation has zero components: %+v", obs)
	}
	if obs.Total != obs.Kernel+obs.Transfer+obs.Sync {
		t.Fatal("observation total inconsistent")
	}
	if obs.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", obs.Rounds)
	}
	if obs.TransferFraction <= 0 || obs.TransferFraction >= 1 {
		t.Fatalf("ΔE = %g", obs.TransferFraction)
	}
}

func TestSystemRunReduce(t *testing.T) {
	sys := testSystem(t)
	in := make([]Word, 333)
	var want Word
	for i := range in {
		in[i] = Word(i % 7)
		want += in[i]
	}
	sum, obs, err := sys.RunReduce(in)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if obs.Rounds < 2 {
		t.Fatalf("rounds = %d, want multi-round", obs.Rounds)
	}
}

func TestSystemRunMatMul(t *testing.T) {
	sys := testSystem(t)
	n := 8
	a := make([]Word, n*n)
	b := make([]Word, n*n)
	for i := range a {
		a[i] = Word(i % 5)
		b[i] = Word(i % 3)
	}
	c, _, err := sys.RunMatMul(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check one entry against the definition.
	var want Word
	for k := 0; k < n; k++ {
		want += a[1*n+k] * b[k*n+2]
	}
	if c[1*n+2] != want {
		t.Fatalf("c[1][2] = %d, want %d", c[1*n+2], want)
	}
}

func TestSystemOutOfCore(t *testing.T) {
	sys := testSystem(t)
	in := make([]Word, 2000)
	var want Word
	for i := range in {
		in[i] = Word(i % 2)
		want += in[i]
	}
	res, err := sys.RunOutOfCoreReduce(in, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != want {
		t.Fatalf("sum = %d, want %d", res.Sum, want)
	}
	if res.OverlappedTime > res.SerialTime {
		t.Fatal("overlap slower than serial")
	}
}

func TestPredictionTracksObservation(t *testing.T) {
	// The headline property on the default (GTX650) system: the predicted
	// transfer share is within 10 points of the observed share, and the
	// ATGPU cost explains most of the observed total while SWGPU does not
	// (for a transfer-dominated workload).
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16
	pred, err := sys.AnalyzeVecAdd(n)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]Word, n)
	b := make([]Word, n)
	_, obs, err := sys.RunVecAdd(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dT, dE := pred.TransferFraction, obs.TransferFraction
	if dT < dE-0.10 || dT > dE+0.10 {
		t.Errorf("ΔT = %.3f vs ΔE = %.3f, want within 0.10", dT, dE)
	}
	total := obs.Total.Seconds()
	atgpuShare := pred.GPUCost / total
	swShare := pred.SWGPUCost / total
	if atgpuShare < 0.7 || atgpuShare > 1.3 {
		t.Errorf("ATGPU explains %.2f of total, want ≈1", atgpuShare)
	}
	if swShare > 0.5 {
		t.Errorf("SWGPU explains %.2f of total, want well below ATGPU", swShare)
	}
}

func TestTableIFacade(t *testing.T) {
	out := TableI()
	if !strings.Contains(out, "ATGPU") || !strings.Contains(out, "Host/Device Data Transfer") {
		t.Fatalf("TableI output wrong:\n%s", out)
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := testSystem(t)
	if err := sys.CostParams().Validate(); err != nil {
		t.Fatalf("calibrated params invalid: %v", err)
	}
	if sys.Options().Device.Name != simgpu.Tiny().Name {
		t.Fatalf("Options lost the device: %+v", sys.Options())
	}
	p := sys.ModelParams(8)
	if p.K() != 8 || p.B != simgpu.Tiny().WarpWidth {
		t.Fatalf("ModelParams = %+v", p)
	}
}

// customAnalysis hand-builds an analysis the way the kernel-designer
// example's workflow does for a new algorithm.
func customAnalysis(sys *System) *core.Analysis {
	return &core.Analysis{
		Name:   "custom",
		Params: sys.ModelParams(16),
		Rounds: []core.Round{{
			Time: 25, IO: 32, Blocks: 16,
			SharedWords: 8, GlobalWords: 128,
			InWords: 64, InTransactions: 1,
			OutWords: 64, OutTransactions: 1,
		}},
	}
}

func TestSystemAnalyzeCustom(t *testing.T) {
	sys := testSystem(t)
	pred, err := sys.Analyze(customAnalysis(sys))
	if err != nil {
		t.Fatal(err)
	}
	if pred.GPUCost <= 0 || pred.SWGPUCost <= 0 {
		t.Fatalf("prediction degenerate: %+v", pred)
	}
	if pred.TransferFraction <= 0 {
		t.Fatal("custom analysis lost its transfer share")
	}
	// An infeasible analysis must be rejected by the cost functions.
	bad := customAnalysis(sys)
	bad.Rounds[0].SharedWords = sys.Options().Device.SharedWords + 1
	if _, err := sys.Analyze(bad); err == nil {
		t.Fatal("infeasible analysis accepted")
	}
}

func TestSystemRunPipelined(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(7))
	n := 512
	a := make([]Word, n)
	b := make([]Word, n)
	for i := range a {
		a[i] = Word(rng.Intn(100))
		b[i] = Word(rng.Intn(100))
	}

	c, pr, err := sys.RunVecAddPipelined(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != a[i]+b[i] {
			t.Fatalf("c[%d] = %d, want %d", i, c[i], a[i]+b[i])
		}
	}
	if pr.Chunks != 4 || pr.Streams != 2 {
		t.Fatalf("schedule %d chunks / %d streams, want 4/2", pr.Chunks, pr.Streams)
	}
	if pr.Saving <= 0 {
		t.Fatalf("pipelined vecadd saved %v, want > 0 (seq %v, pipe %v)",
			pr.Saving, pr.Sequential.Total, pr.Pipelined.Total)
	}
	if f := pr.SavingFraction(); f <= 0 || f >= 1 {
		t.Fatalf("saving fraction %g outside (0,1)", f)
	}

	sum, rp, err := sys.RunReducePipelined(a)
	if err != nil {
		t.Fatal(err)
	}
	var want Word
	for _, v := range a {
		want += v
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if rp.Sequential.Total <= 0 || rp.Pipelined.Total <= 0 {
		t.Fatalf("reduce observations empty: %+v", rp)
	}

	side := 16
	ma := make([]Word, side*side)
	mb := make([]Word, side*side)
	for i := range ma {
		ma[i] = Word(rng.Intn(10))
		mb[i] = Word(rng.Intn(10))
	}
	mc, mp, err := sys.RunMatMulPipelined(ma, mb, side)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			var w Word
			for k := 0; k < side; k++ {
				w += ma[i*side+k] * mb[k*side+j]
			}
			if mc[i*side+j] != w {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, mc[i*side+j], w)
			}
		}
	}
	if mp.Pipelined.Total > mp.Sequential.Total {
		t.Fatalf("matmul pipelined %v slower than sequential %v",
			mp.Pipelined.Total, mp.Sequential.Total)
	}

	bad := DefaultOptions()
	bad.Chunks = -2
	if _, err := NewSystem(bad); err == nil {
		t.Error("negative chunks accepted")
	}
}
